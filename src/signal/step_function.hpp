#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ftio::signal {

/// Piecewise-constant function of time: value `values[i]` holds on
/// [times[i], times[i+1]). This is the natural shape of the application-
/// level bandwidth curve produced by overlapping I/O requests (Sec. II-A);
/// `times` has exactly one more entry than `values` and is strictly
/// increasing.
class StepFunction {
 public:
  StepFunction() = default;

  /// Builds a step function; validates monotonicity and sizes.
  StepFunction(std::vector<double> times, std::vector<double> values);

  /// Value at time t; 0 outside [start_time, end_time).
  double value_at(double t) const;

  /// Integral over [a, b] (exact, since the function is piecewise constant).
  double integral(double a, double b) const;

  /// Integral over the whole support.
  double total_integral() const;

  double start_time() const { return times_.empty() ? 0.0 : times_.front(); }
  double end_time() const { return times_.empty() ? 0.0 : times_.back(); }
  double duration() const { return end_time() - start_time(); }
  bool empty() const { return values_.empty(); }
  std::size_t segment_count() const { return values_.size(); }

  std::span<const double> times() const { return times_; }
  std::span<const double> values() const { return values_; }

  /// Largest value over the support (0 for an empty function).
  double max_value() const;

  /// Replaces the tail of the function: keeps the first `keep_boundaries`
  /// boundary times (and every segment value whose start boundary is
  /// kept), then appends `new_times` / `new_values`. The appended tail
  /// must restore the invariants — strictly increasing times and
  /// times.size() == values.size() + 1 — or the call throws. Used by
  /// trace::IncrementalBandwidth to extend the bandwidth curve in place;
  /// cost is O(tail), not O(total support).
  void splice_tail(std::size_t keep_boundaries,
                   std::span<const double> new_times,
                   std::span<const double> new_values);

  /// Drops the first `drop_boundaries` boundaries and their segments:
  /// times[drop_boundaries] becomes the new support start. The retained
  /// boundary times and segment values are preserved bit for bit (the
  /// function is unchanged on the new support; evicted times read as 0).
  /// At least one segment must remain. Used by
  /// trace::IncrementalBandwidth::compact to bound streaming-session
  /// curves to the analysis window.
  void trim_front(std::size_t drop_boundaries);

  /// Releases over-sized buffers after evictions: shrinks the backing
  /// vectors when their capacity exceeds twice the live size.
  void shrink_to_fit();

  /// Resident bytes of the backing storage (capacity, not size — the
  /// figure streaming memory accounting wants).
  std::size_t memory_bytes() const {
    return (times_.capacity() + values_.capacity()) * sizeof(double);
  }

 private:
  std::vector<double> times_;
  std::vector<double> values_;

  /// Index of the segment containing t, or SIZE_MAX when outside.
  std::size_t segment_index(double t) const;
};

/// Result of discretising a continuous signal (Sec. II-B1 / II-E).
struct DiscretizedSignal {
  std::vector<double> samples;      ///< x_n = x(t0 + n/fs)
  double sampling_frequency = 0.0;  ///< fs
  double start_time = 0.0;          ///< t0
  /// Abstraction error: |volume(discrete) - volume(original)| /
  /// volume(original), the "volume difference between the two shown
  /// signals" used to reject under-sampled signals in Fig. 6.
  double abstraction_error = 0.0;
};

/// Sampling strategy: point sampling matches the paper's definition
/// x_n = x(n/fs); bin averaging integrates each 1/fs bin (used for
/// heatmap-style inputs whose bins already average).
enum class SamplingMode { kPointSample, kBinAverage };

/// Discretises `f` over its support at `fs` Hz. The number of samples is
/// N = ceil(duration * fs); a trailing partial bin is sampled at its start.
DiscretizedSignal discretize(const StepFunction& f, double fs,
                             SamplingMode mode = SamplingMode::kPointSample);

}  // namespace ftio::signal
