#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "signal/fft.hpp"

namespace ftio::signal {

/// Single-sided spectrum of a real, evenly sampled signal, following the
/// conventions of Sec. II-B1:
///  - bins k in [0, N/2] with frequencies f_k = k * fs / N,
///  - amplitude |X_k| (the DC bin X_0 is kept unscaled; callers that
///    reconstruct with Eq. (1) double the amplitudes that have a
///    conjugate twin, i.e. everything except DC and the even-N Nyquist
///    bin),
///  - power p_k = |X_k|^2 / N,
///  - normalised power = p_k / total power (the plotted y-axis in the
///    paper's spectra).
struct Spectrum {
  double sampling_frequency = 0.0;  ///< fs in Hz
  std::size_t total_samples = 0;    ///< N
  std::vector<double> frequencies;  ///< f_k, size N/2 + 1
  std::vector<double> amplitudes;   ///< |X_k|
  std::vector<double> phases;       ///< arg(X_k)
  std::vector<double> power;        ///< p_k = |X_k|^2 / N
  std::vector<double> normed_power; ///< p_k / sum(p)

  /// Frequency-domain resolution 1/dt = fs/N between adjacent bins.
  double frequency_step() const;

  /// Number of inspectable (non-DC) bins, N/2 in the paper's wording.
  std::size_t inspected_bins() const { return frequencies.empty() ? 0 : frequencies.size() - 1; }
};

/// Computes the single-sided spectrum of `samples` taken at `fs` Hz.
/// Throws InvalidArgument for empty input or non-positive fs.
Spectrum compute_spectrum(std::span<const double> samples, double fs);

/// Batched compute_spectrum over many windows at once (the engine's
/// multi-window path): windows of equal length are grouped and their
/// forward transforms run through the plan's stage-major batched
/// execution, with cache-resident batch tiles fanned across up to
/// `threads` workers (0 = hardware concurrency; 1 = serial). Mixed
/// lengths are allowed — each group batches independently. out[i] is
/// bit-identical to compute_spectrum(signals[i], fs) for every grouping
/// and thread count. Throws InvalidArgument if any window is empty.
std::vector<Spectrum> compute_spectra(
    std::span<const std::span<const double>> signals, double fs,
    unsigned threads = 1);

/// One cosine component of the Eq. (1) reconstruction:
/// a * cos(2*pi*f*t + phase), where a already includes the factor 2 for
/// non-DC bins and 1/N normalisation.
struct CosineWave {
  double frequency = 0.0;
  double amplitude = 0.0;
  double phase = 0.0;
};

/// Extracts the reconstruction wave for bin k of a spectrum (Eq. (1)).
CosineWave wave_for_bin(const Spectrum& spectrum, std::size_t k);

/// Evaluates the sum of `waves` (plus `dc_offset`) at sample times
/// t_n = n / fs for n in [0, n_samples). Used to redraw the paper's
/// Figs. 13-14 (top contributing waves, merged candidate waves).
std::vector<double> synthesize(std::span<const CosineWave> waves,
                               double dc_offset, double fs,
                               std::size_t n_samples);

}  // namespace ftio::signal
