#include "signal/plan.hpp"

#include <cmath>
#include <list>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace ftio::signal {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// exp(-2*pi*i*k/n) with the quarter-period points snapped to their exact
/// values. sin(pi) rounds to ~1.22e-16 rather than 0, and that residue
/// multiplied into a nonzero bin turns an exactly-zero spectrum line into
/// noise (visible on constant signals, whose off-DC bins cancel exactly).
Complex unit_root(std::size_t k, std::size_t n) {
  if (k == 0) return Complex(1.0, 0.0);
  if (4 * k == n) return Complex(0.0, -1.0);
  if (2 * k == n) return Complex(-1.0, 0.0);
  if (4 * k == 3 * n) return Complex(0.0, 1.0);
  const double angle = -kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
  return Complex(std::cos(angle), std::sin(angle));
}

/// Per-thread scratch. Each member is dedicated to one call site so that
/// nested transforms (forward_real -> half plan -> Bluestein -> radix-2)
/// never step on each other's buffer:
///   bluestein  — conv: the m-point convolution buffer
///   inverse    — conj: conjugated input for the non-pow2 inverse
///   real path  — packed/half: the N/2 packed signal and its spectrum
///   rfft fallback (odd N) — packed doubles as the complexified input
/// Buffers only grow, so steady-state transforms do no allocation at all.
struct Workspace {
  std::vector<Complex> conv;
  std::vector<Complex> conj;
  std::vector<Complex> packed;
  std::vector<Complex> half;
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

/// Radix-2 butterfly passes with the direction compiled in: no per-
/// butterfly invert branch, and the first stage (every twiddle is 1)
/// runs as plain add/sub pairs.
template <bool Invert>
void radix2_core(std::span<Complex> a,
                 const std::vector<std::uint32_t>& bitrev,
                 const std::vector<Complex>& twiddle) {
  const std::size_t n = a.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const Complex u = a[i];
    const Complex v = a[i + 1];
    a[i] = u + v;
    a[i + 1] = u - v;
  }
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t stride = n / len;  // twiddle table stride
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        Complex w = twiddle[j * stride];
        if constexpr (Invert) w = std::conj(w);
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// FftPlan
// ---------------------------------------------------------------------------

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  ftio::util::expect(n >= 1, "FftPlan: size must be >= 1");
  ftio::util::expect(n <= (std::size_t{1} << 31),
                     "FftPlan: size exceeds 2^31");

  if (pow2_ && n_ >= 2) {
    // Bit-reversal permutation, same construction as the classic in-place
    // loop but stored once instead of recomputed per transform.
    bitrev_.resize(n_);
    bitrev_[0] = 0;
    for (std::size_t i = 1, j = 0; i < n_; ++i) {
      std::size_t bit = n_ >> 1;
      for (; j & bit; bit >>= 1) j ^= bit;
      j ^= bit;
      bitrev_[i] = static_cast<std::uint32_t>(j);
    }
    twiddle_.resize(n_ / 2);
    for (std::size_t j = 0; j < n_ / 2; ++j) {
      twiddle_[j] = unit_root(j, n_);
    }
  } else if (!pow2_) {
    m_ = next_power_of_two(2 * n_ - 1);
  }
}

void FftPlan::ensure_bluestein_tables() const {
  std::call_once(bluestein_once_, [this] {
    // Bluestein: chirp, and the FFT of the wrapped conjugate chirp — the
    // expensive part of the convolution, paid once per size on the first
    // complex transform.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n avoids catastrophic phase error for large k.
      const std::size_t k2 = (k * k) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(k2) /
                           static_cast<double>(n_);
      chirp_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    sub_ = get_plan(m_);
    bhat_.assign(m_, Complex(0.0, 0.0));
    bhat_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      bhat_[k] = bhat_[m_ - k] = std::conj(chirp_[k]);
    }
    sub_->radix2_inplace(bhat_, /*invert=*/false);
  });
}

void FftPlan::ensure_real_tables() const {
  std::call_once(real_once_, [this] {
    half_ = get_plan(n_ / 2);
    // forward_real always runs the half plan's complex transform, so
    // finish its lazy state here rather than on first use.
    half_->prepare(/*for_real_input=*/false);
    real_twiddle_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      real_twiddle_[k] = unit_root(k, n_);
    }
  });
}

void FftPlan::prepare(bool for_real_input) const {
  if (for_real_input && n_ >= 2 && n_ % 2 == 0) {
    ensure_real_tables();
    return;
  }
  if (!pow2_ && n_ > 1) ensure_bluestein_tables();
}

void FftPlan::radix2_inplace(std::span<Complex> a, bool invert) const {
  if (a.size() < 2) return;
  if (invert) {
    radix2_core<true>(a, bitrev_, twiddle_);
  } else {
    radix2_core<false>(a, bitrev_, twiddle_);
  }
}

void FftPlan::bluestein_forward(std::span<const Complex> in,
                                std::span<Complex> out) const {
  ensure_bluestein_tables();
  auto& conv = workspace().conv;
  conv.assign(m_, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n_; ++k) conv[k] = in[k] * chirp_[k];

  sub_->radix2_inplace(conv, /*invert=*/false);
  for (std::size_t i = 0; i < m_; ++i) conv[i] *= bhat_[i];
  sub_->radix2_inplace(conv, /*invert=*/true);

  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    out[k] = conv[k] * scale * chirp_[k];
  }
}

void FftPlan::forward(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward: size mismatch");
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (pow2_) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    radix2_inplace(out, /*invert=*/false);
    return;
  }
  bluestein_forward(in, out);
}

void FftPlan::inverse(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::inverse: size mismatch");
  const double scale = 1.0 / static_cast<double>(n_);
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (pow2_) {
    if (out.data() != in.data()) {
      std::copy(in.begin(), in.end(), out.begin());
    }
    radix2_inplace(out, /*invert=*/true);
    for (auto& v : out) v *= scale;
    return;
  }
  // Non power-of-two inverse via conjugation: ifft(x) = conj(fft(conj(x)))/N.
  auto& cj = workspace().conj;
  cj.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) cj[k] = std::conj(in[k]);
  bluestein_forward(cj, out);
  for (auto& v : out) v = std::conj(v) * scale;
}

void FftPlan::forward_real(std::span<const double> in,
                           std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward_real: size mismatch");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    // Odd N: complexify and run the full transform.
    auto& packed = workspace().packed;
    packed.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) packed[i] = Complex(in[i], 0.0);
    forward(packed, out);
    return;
  }

  // Pack x[2j] + i*x[2j+1] into an N/2-point signal, transform it, then
  // untangle the even/odd spectra with the precomputed unpack twiddles.
  ensure_real_tables();
  const std::size_t h = n_ / 2;
  auto& packed = workspace().packed;
  auto& half = workspace().half;
  packed.resize(h);
  half.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    packed[j] = Complex(in[2 * j], in[2 * j + 1]);
  }
  half_->forward(packed, half);

  for (std::size_t k = 0; k <= h; ++k) {
    const Complex zk = half[k % h];
    const Complex zmk = std::conj(half[(h - k) % h]);
    const Complex even = 0.5 * (zk + zmk);
    const Complex odd = Complex(0.0, -0.5) * (zk - zmk);
    const Complex xk = even + real_twiddle_[k] * odd;
    out[k] = xk;
    if (k > 0 && k < h) out[n_ - k] = std::conj(xk);
  }
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

struct PlanCache::Impl {
  mutable std::mutex mutex;
  std::size_t capacity;
  // MRU-ordered list of (size, plan); map values point into the list.
  std::list<std::pair<std::size_t, std::shared_ptr<const FftPlan>>> lru;
  std::unordered_map<std::size_t, decltype(lru)::iterator> index;
  // Counters are only touched under `mutex`.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  void evict_to_capacity_locked() {
    while (lru.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
      ++evictions;
    }
  }
};

PlanCache::PlanCache(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

PlanCache::~PlanCache() = default;

std::shared_ptr<const FftPlan> PlanCache::get(std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->index.find(n);
    if (it != impl_->index.end()) {
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      ++impl_->hits;
      return it->second->second;
    }
  }
  // Construct outside the lock: plan construction can recurse into the
  // cache (Bluestein's power-of-two sub-plan, the real-path half plan) and
  // may take milliseconds for large N. Two threads racing on the same size
  // build twice; the first insert wins, the loser's copy is discarded and
  // its lookup is recounted as a hit on the winner's entry.
  auto plan = std::make_shared<const FftPlan>(n);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  auto it = impl_->index.find(n);
  if (it != impl_->index.end()) {
    impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
    ++impl_->hits;
    return it->second->second;
  }
  ++impl_->misses;
  impl_->lru.emplace_front(n, plan);
  impl_->index[n] = impl_->lru.begin();
  impl_->evict_to_capacity_locked();
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.evictions = impl_->evictions;
  s.size = impl_->lru.size();
  return s;
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->capacity;
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  impl_->evict_to_capacity_locked();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->hits = 0;
  impl_->misses = 0;
  impl_->evictions = 0;
}

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> get_plan(std::size_t n) {
  return plan_cache().get(n);
}

// ---------------------------------------------------------------------------
// Allocation-free entry points
// ---------------------------------------------------------------------------

void fft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "fft_into: empty input");
  get_plan(in.size())->forward(in, out);
}

void ifft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "ifft_into: empty input");
  get_plan(in.size())->inverse(in, out);
}

void rfft_into(std::span<const double> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "rfft_into: empty input");
  get_plan(in.size())->forward_real(in, out);
}

}  // namespace ftio::signal
