#include "signal/plan.hpp"

#include <cmath>
#include <future>
#include <list>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "util/error.hpp"

namespace ftio::signal {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// exp(-2*pi*i*k/n) with the quarter-period points snapped to their exact
/// values. sin(pi) rounds to ~1.22e-16 rather than 0, and that residue
/// multiplied into a nonzero bin turns an exactly-zero spectrum line into
/// noise (visible on constant signals, whose off-DC bins cancel exactly).
Complex unit_root(std::size_t k, std::size_t n) {
  if (k == 0) return Complex(1.0, 0.0);
  if (4 * k == n) return Complex(0.0, -1.0);
  if (2 * k == n) return Complex(-1.0, 0.0);
  if (4 * k == 3 * n) return Complex(0.0, 1.0);
  const double angle = -kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
  return Complex(std::cos(angle), std::sin(angle));
}

/// Bit-reversal permutation for a power-of-two n, the classic in-place
/// increment loop stored once. Shared by the plan constructor and the
/// detail:: radix-2 reference tables (the kernels are independent; the
/// permutation is just data).
std::vector<std::uint32_t> build_bitrev(std::size_t n) {
  std::vector<std::uint32_t> bitrev(n);
  if (n < 2) return bitrev;
  bitrev[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev[i] = static_cast<std::uint32_t>(j);
  }
  return bitrev;
}

/// Per-thread scratch. Each member is dedicated to one call site so that
/// nested transforms (forward_real_half -> half plan -> Bluestein ->
/// power-of-two core) never step on each other's buffer:
///   split core — re/im: the planar real/imag lanes every power-of-two
///                transform (and the packed real fast path) runs on
///   bluestein  — conv: the m-point convolution buffer
///   inverse    — conj: conjugated input for the non-pow2 inverse
///   real path  — packed/half: the N/2 packed signal and its spectrum
///                (also the complexified input for the odd-N fallback)
/// Buffers only grow, so steady-state transforms do no allocation at all.
struct Workspace {
  std::vector<double> re;
  std::vector<double> im;
  std::vector<Complex> conv;
  std::vector<Complex> conj;
  std::vector<Complex> packed;
  std::vector<Complex> half;
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace

// ---------------------------------------------------------------------------
// FftPlan
// ---------------------------------------------------------------------------

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  ftio::util::expect(n >= 1, "FftPlan: size must be >= 1");
  ftio::util::expect(n <= (std::size_t{1} << 31),
                     "FftPlan: size exceeds 2^31");

  if (pow2_ && n_ >= 2) {
    bitrev_ = build_bitrev(n_);

    // Butterfly schedule: stages of length 2, 4, ..., N fused in pairs
    // into radix-4 passes. An odd stage count leaves the trivial
    // twiddle-free length-2 stage as a radix-2 lead; an even count starts
    // with the equally twiddle-free fused (2,4) pass.
    unsigned k = 0;
    while ((std::size_t{1} << k) < n_) ++k;
    std::size_t stage = 1;  // next unfused stage s (length 2^s)
    if (k % 2 == 1) {
      lead_radix2_ = true;
      stage = 2;
    } else {
      lead_radix4_ = true;
      stage = 3;
    }
    for (; stage + 1 <= k; stage += 2) {
      const std::size_t len = std::size_t{1} << stage;  // fuse (len, 2*len)
      Radix4Pass pass;
      pass.half = len / 2;
      pass.w1re.resize(pass.half);
      pass.w1im.resize(pass.half);
      pass.w2re.resize(pass.half);
      pass.w2im.resize(pass.half);
      for (std::size_t j = 0; j < pass.half; ++j) {
        const Complex w1 = unit_root(j, len);
        const Complex w2 = unit_root(j, 2 * len);
        pass.w1re[j] = w1.real();
        pass.w1im[j] = w1.imag();
        pass.w2re[j] = w2.real();
        pass.w2im[j] = w2.imag();
      }
      passes_.push_back(std::move(pass));
    }
  } else if (!pow2_) {
    m_ = next_power_of_two(2 * n_ - 1);
  }
}

void FftPlan::split_passes(double* re, double* im, bool invert) const {
  const std::size_t n = n_;
  const auto run = [&]<bool Inv>() {
    if (lead_radix2_) {
      // Stage of length 2: every twiddle is 1.
      for (std::size_t i = 0; i + 1 < n; i += 2) {
        const double ar = re[i], ai = im[i];
        const double br = re[i + 1], bi = im[i + 1];
        re[i] = ar + br;
        im[i] = ai + bi;
        re[i + 1] = ar - br;
        im[i + 1] = ai - bi;
      }
    } else if (lead_radix4_) {
      // Fused stages (2, 4): plain 4-point DFTs, no twiddle loads.
      for (std::size_t i = 0; i + 3 < n; i += 4) {
        const double ar = re[i], ai = im[i];
        const double br = re[i + 1], bi = im[i + 1];
        const double cr = re[i + 2], ci = im[i + 2];
        const double dr = re[i + 3], di = im[i + 3];
        const double t0r = ar + br, t0i = ai + bi;
        const double t1r = ar - br, t1i = ai - bi;
        const double t2r = cr + dr, t2i = ci + di;
        const double t3r = cr - dr, t3i = ci - di;
        re[i] = t0r + t2r;
        im[i] = t0i + t2i;
        re[i + 2] = t0r - t2r;
        im[i + 2] = t0i - t2i;
        if constexpr (Inv) {
          re[i + 1] = t1r - t3i;
          im[i + 1] = t1i + t3r;
          re[i + 3] = t1r + t3i;
          im[i + 3] = t1i - t3r;
        } else {
          re[i + 1] = t1r + t3i;
          im[i + 1] = t1i - t3r;
          re[i + 3] = t1r - t3i;
          im[i + 3] = t1i + t3r;
        }
      }
    }
    // Generic fused passes: stage pair (L, 2L) as one radix-4 sweep over
    // blocks of 2L. Within a block the four quarters are contiguous, so
    // the j loop below is pure stride-1 double arithmetic over disjoint
    // lanes — exactly the shape auto-vectorisers handle.
    for (const auto& pass : passes_) {
      const std::size_t half = pass.half;  // L/2
      const std::size_t block = 4 * half;  // 2L
      const double* __restrict w1r = pass.w1re.data();
      const double* __restrict w1i = pass.w1im.data();
      const double* __restrict w2r = pass.w2re.data();
      const double* __restrict w2i = pass.w2im.data();
      for (std::size_t i = 0; i < n; i += block) {
        double* __restrict re0 = re + i;
        double* __restrict im0 = im + i;
        double* __restrict re1 = re0 + half;
        double* __restrict im1 = im0 + half;
        double* __restrict re2 = re0 + 2 * half;
        double* __restrict im2 = im0 + 2 * half;
        double* __restrict re3 = re0 + 3 * half;
        double* __restrict im3 = im0 + 3 * half;
        for (std::size_t j = 0; j < half; ++j) {
          const double w1rj = w1r[j];
          const double w1ij = Inv ? -w1i[j] : w1i[j];
          const double w2rj = w2r[j];
          const double w2ij = Inv ? -w2i[j] : w2i[j];
          // Stage L: butterflies (0,1) and (2,3) with twiddle w1.
          const double br = w1rj * re1[j] - w1ij * im1[j];
          const double bi = w1rj * im1[j] + w1ij * re1[j];
          const double dr = w1rj * re3[j] - w1ij * im3[j];
          const double di = w1rj * im3[j] + w1ij * re3[j];
          const double t0r = re0[j] + br, t0i = im0[j] + bi;
          const double t1r = re0[j] - br, t1i = im0[j] - bi;
          const double t2r = re2[j] + dr, t2i = im2[j] + di;
          const double t3r = re2[j] - dr, t3i = im2[j] - di;
          // Stage 2L: butterflies (0,2) with w2 and (1,3) with -i*w2
          // (+i*w2 for the inverse) — the -i is folded into the output
          // shuffle instead of a third twiddle table.
          const double u2r = w2rj * t2r - w2ij * t2i;
          const double u2i = w2rj * t2i + w2ij * t2r;
          const double u3r = w2rj * t3r - w2ij * t3i;
          const double u3i = w2rj * t3i + w2ij * t3r;
          re0[j] = t0r + u2r;
          im0[j] = t0i + u2i;
          re2[j] = t0r - u2r;
          im2[j] = t0i - u2i;
          if constexpr (Inv) {
            re1[j] = t1r - u3i;
            im1[j] = t1i + u3r;
            re3[j] = t1r + u3i;
            im3[j] = t1i - u3r;
          } else {
            re1[j] = t1r + u3i;
            im1[j] = t1i - u3r;
            re3[j] = t1r - u3i;
            im3[j] = t1i + u3r;
          }
        }
      }
    }
  };
  if (invert) {
    run.template operator()<true>();
  } else {
    run.template operator()<false>();
  }
}

void FftPlan::pow2_transform(std::span<const Complex> in,
                             std::span<Complex> out, bool invert) const {
  const std::size_t n = n_;
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  // Deinterleave into planar lanes, applying the bit-reversal permutation
  // during the gather (the input span is fully consumed before any write
  // to out, so in and out may alias).
  auto& ws = workspace();
  ws.re.resize(n);
  ws.im.resize(n);
  double* re = ws.re.data();
  double* im = ws.im.data();
  const std::uint32_t* bp = bitrev_.data();
  for (std::size_t i = 0; i < n; ++i) {
    const Complex v = in[bp[i]];
    re[i] = v.real();
    im[i] = v.imag();
  }
  split_passes(re, im, invert);
  for (std::size_t i = 0; i < n; ++i) out[i] = Complex(re[i], im[i]);
}

void FftPlan::pow2_inplace(std::span<Complex> a, bool invert) const {
  pow2_transform(a, a, invert);
}

void FftPlan::ensure_bluestein_tables() const {
  std::call_once(bluestein_once_, [this] {
    // Bluestein: chirp, and the FFT of the wrapped conjugate chirp — the
    // expensive part of the convolution, paid once per size on the first
    // complex transform.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n avoids catastrophic phase error for large k.
      const std::size_t k2 = (k * k) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(k2) /
                           static_cast<double>(n_);
      chirp_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    sub_ = get_plan(m_);
    bhat_.assign(m_, Complex(0.0, 0.0));
    bhat_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      bhat_[k] = bhat_[m_ - k] = std::conj(chirp_[k]);
    }
    sub_->pow2_inplace(bhat_, /*invert=*/false);
  });
}

void FftPlan::ensure_real_tables() const {
  std::call_once(real_once_, [this] {
    half_ = get_plan(n_ / 2);
    // The packed real path always runs the half plan's complex transform,
    // so finish its lazy state here rather than on first use.
    half_->prepare(/*for_real_input=*/false);
    real_twiddle_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      real_twiddle_[k] = unit_root(k, n_);
    }
  });
}

void FftPlan::prepare(bool for_real_input) const {
  if (for_real_input && n_ >= 2 && n_ % 2 == 0) {
    ensure_real_tables();
    return;
  }
  if (!pow2_ && n_ > 1) ensure_bluestein_tables();
}

void FftPlan::bluestein_forward(std::span<const Complex> in,
                                std::span<Complex> out) const {
  ensure_bluestein_tables();
  auto& conv = workspace().conv;
  conv.assign(m_, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n_; ++k) conv[k] = in[k] * chirp_[k];

  sub_->pow2_inplace(conv, /*invert=*/false);
  for (std::size_t i = 0; i < m_; ++i) conv[i] *= bhat_[i];
  sub_->pow2_inplace(conv, /*invert=*/true);

  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    out[k] = conv[k] * scale * chirp_[k];
  }
}

void FftPlan::forward(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward: size mismatch");
  if (pow2_) {
    pow2_transform(in, out, /*invert=*/false);
    return;
  }
  bluestein_forward(in, out);
}

void FftPlan::inverse(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::inverse: size mismatch");
  const double scale = 1.0 / static_cast<double>(n_);
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (pow2_) {
    pow2_transform(in, out, /*invert=*/true);
    for (auto& v : out) v *= scale;
    return;
  }
  // Non power-of-two inverse via conjugation: ifft(x) = conj(fft(conj(x)))/N.
  auto& cj = workspace().conj;
  cj.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) cj[k] = std::conj(in[k]);
  bluestein_forward(cj, out);
  for (auto& v : out) v = std::conj(v) * scale;
}

void FftPlan::forward_real(std::span<const double> in,
                           std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward_real: size mismatch");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    // Odd N: complexify and run the full transform directly.
    auto& packed = workspace().packed;
    packed.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) packed[i] = Complex(in[i], 0.0);
    forward(packed, out);
    return;
  }
  // Even N: packed half transform, then mirror the conjugate-symmetric
  // upper half for legacy full-spectrum callers.
  const std::size_t h = n_ / 2;
  forward_real_half(in, out.first(h + 1));
  for (std::size_t k = 1; k < h; ++k) out[n_ - k] = std::conj(out[k]);
}

void FftPlan::forward_real_half(std::span<const double> in,
                                std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_ / 2 + 1,
                     "FftPlan::forward_real_half: size mismatch");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  auto& ws = workspace();
  if (n_ % 2 != 0) {
    // Odd N: full complex transform into scratch, keep the half.
    ws.packed.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) ws.packed[i] = Complex(in[i], 0.0);
    ws.half.resize(n_);
    forward(ws.packed, ws.half);
    std::copy(ws.half.begin(), ws.half.begin() + n_ / 2 + 1, out.begin());
    return;
  }

  // Pack x[2j] + i*x[2j+1] into an N/2-point signal, transform it, then
  // untangle the single-sided even/odd spectra with the precomputed
  // unpack twiddles. The mirror bins X[N-k] are never formed. `z` reads
  // bin k of the packed transform from whichever buffer the branch below
  // produced it in.
  ensure_real_tables();
  const std::size_t h = n_ / 2;
  const auto unpack_half = [&](auto&& z) {
    const Complex* tw = real_twiddle_.data();
    for (std::size_t k = 0; k <= h; ++k) {
      const Complex zk = z(k % h);
      const Complex zmk = std::conj(z((h - k) % h));
      const Complex even = 0.5 * (zk + zmk);
      const Complex odd = Complex(0.0, -0.5) * (zk - zmk);
      out[k] = even + tw[k] * odd;
    }
  };
  if (half_->pow2_) {
    // Fast path: pack the real pairs straight into the planar split
    // buffers, permuting as we go — no interleaved complex copy at all.
    ws.re.resize(h);
    ws.im.resize(h);
    double* re = ws.re.data();
    double* im = ws.im.data();
    if (h == 1) {
      re[0] = in[0];
      im[0] = in[1];
    } else {
      const std::uint32_t* bp = half_->bitrev_.data();
      for (std::size_t j = 0; j < h; ++j) {
        const std::size_t s = 2 * static_cast<std::size_t>(bp[j]);
        re[j] = in[s];
        im[j] = in[s + 1];
      }
      half_->split_passes(re, im, /*invert=*/false);
    }
    unpack_half([&](std::size_t k) { return Complex(re[k], im[k]); });
    return;
  }

  // Even N with a non power-of-two half: the half transform runs through
  // Bluestein on an interleaved buffer.
  ws.packed.resize(h);
  ws.half.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    ws.packed[j] = Complex(in[2 * j], in[2 * j + 1]);
  }
  half_->forward(ws.packed, ws.half);
  unpack_half([&](std::size_t k) { return ws.half[k]; });
}

void FftPlan::inverse_real_half(std::span<const Complex> in,
                                std::span<double> out) const {
  ftio::util::expect(in.size() == n_ / 2 + 1 && out.size() == n_,
                     "FftPlan::inverse_real_half: size mismatch");
  if (n_ == 1) {
    out[0] = in[0].real();
    return;
  }
  auto& ws = workspace();
  if (n_ % 2 != 0) {
    // Odd N: rebuild the full conjugate-symmetric spectrum and run the
    // complex inverse; the imaginary parts of the result are rounding
    // noise and dropped.
    const std::size_t h = n_ / 2;
    ws.packed.resize(n_);
    ws.packed[0] = Complex(in[0].real(), 0.0);
    for (std::size_t k = 1; k <= h; ++k) {
      ws.packed[k] = in[k];
      ws.packed[n_ - k] = std::conj(in[k]);
    }
    ws.half.resize(n_);
    inverse(ws.packed, ws.half);
    for (std::size_t i = 0; i < n_; ++i) out[i] = ws.half[i].real();
    return;
  }

  // Even N: fold the half spectrum back into the N/2-point packed signal
  // Z_k = E_k + i*O_k (E/O the even/odd-sample spectra, O recovered with
  // the conjugate unpack twiddle), inverse-transform it, and deinterleave
  // z_j = x[2j] + i*x[2j+1]. DC and Nyquist imaginary parts are forced to
  // zero — a real signal cannot produce them.
  ensure_real_tables();
  const std::size_t h = n_ / 2;
  const Complex x0(in[0].real(), 0.0);
  const Complex xh(in[h].real(), 0.0);
  const Complex* tw = real_twiddle_.data();
  const auto z_at = [&](std::size_t k) {
    const Complex xk = k == 0 ? x0 : in[k];
    const Complex xmk = std::conj(k == 0 ? xh : in[h - k]);
    const Complex even = 0.5 * (xk + xmk);
    const Complex odd = std::conj(tw[k]) * (0.5 * (xk - xmk));
    // Z_k = E_k + i * O_k
    return Complex(even.real() - odd.imag(), even.imag() + odd.real());
  };
  if (half_->pow2_) {
    ws.re.resize(h);
    ws.im.resize(h);
    double* re = ws.re.data();
    double* im = ws.im.data();
    if (h == 1) {
      const Complex z = z_at(0);
      re[0] = z.real();
      im[0] = z.imag();
    } else {
      // Scatter into bit-reversed order so the split passes run directly.
      const std::uint32_t* bp = half_->bitrev_.data();
      for (std::size_t k = 0; k < h; ++k) {
        const Complex z = z_at(k);
        const std::size_t d = bp[k];
        re[d] = z.real();
        im[d] = z.imag();
      }
      half_->split_passes(re, im, /*invert=*/true);
    }
    const double scale = 1.0 / static_cast<double>(h);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = re[j] * scale;
      out[2 * j + 1] = im[j] * scale;
    }
    return;
  }

  ws.packed.resize(h);
  for (std::size_t k = 0; k < h; ++k) ws.packed[k] = z_at(k);
  ws.half.resize(h);
  half_->inverse(ws.packed, ws.half);  // includes the 1/(N/2) scaling
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = ws.half[j].real();
    out[2 * j + 1] = ws.half[j].imag();
  }
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

struct PlanCache::Impl {
  mutable std::mutex mutex;
  std::size_t capacity;
  // MRU-ordered list of (size, plan); map values point into the list.
  std::list<std::pair<std::size_t, std::shared_ptr<const FftPlan>>> lru;
  std::unordered_map<std::size_t, decltype(lru)::iterator> index;
  // In-flight constructions, keyed by size: late arrivals block on the
  // winner's future instead of duplicating a potentially multi-ms build.
  struct Build {
    std::promise<std::shared_ptr<const FftPlan>> promise;
    std::shared_future<std::shared_ptr<const FftPlan>> future;
  };
  std::unordered_map<std::size_t, std::shared_ptr<Build>> building;
  // Counters are only touched under `mutex`.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t miss_waits = 0;
  std::uint64_t evictions = 0;

  void evict_to_capacity_locked() {
    while (lru.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
      ++evictions;
    }
  }
};

PlanCache::PlanCache(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

PlanCache::~PlanCache() = default;

std::shared_ptr<const FftPlan> PlanCache::get(std::size_t n) {
  std::shared_ptr<Impl::Build> build;
  std::shared_future<std::shared_ptr<const FftPlan>> wait_on;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->index.find(n);
    if (it != impl_->index.end()) {
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      ++impl_->hits;
      return it->second->second;
    }
    auto in_flight = impl_->building.find(n);
    if (in_flight != impl_->building.end()) {
      // Another thread is constructing this size right now: block on its
      // future instead of building a duplicate. The wait happens outside
      // this scope — the builder needs the mutex to publish its result.
      ++impl_->miss_waits;
      wait_on = in_flight->second->future;
    } else {
      build = std::make_shared<Impl::Build>();
      build->future = build->promise.get_future().share();
      impl_->building.emplace(n, build);
    }
  }
  if (wait_on.valid()) return wait_on.get();
  // Construct outside the lock: plan construction can recurse into the
  // cache (Bluestein's power-of-two sub-plan, the real-path half plan) and
  // may take milliseconds for large N. The `building` slot guarantees this
  // thread is the only one constructing size n.
  std::shared_ptr<const FftPlan> plan;
  try {
    plan = std::make_shared<const FftPlan>(n);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->building.erase(n);
    }
    build->promise.set_exception(std::current_exception());
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    ++impl_->misses;
    impl_->lru.emplace_front(n, plan);
    impl_->index[n] = impl_->lru.begin();
    impl_->building.erase(n);
    impl_->evict_to_capacity_locked();
  }
  build->promise.set_value(plan);
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.miss_waits = impl_->miss_waits;
  s.evictions = impl_->evictions;
  s.size = impl_->lru.size();
  return s;
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return impl_->capacity;
}

void PlanCache::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  impl_->evict_to_capacity_locked();
}

void PlanCache::clear() {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->hits = 0;
  impl_->misses = 0;
  impl_->miss_waits = 0;
  impl_->evictions = 0;
}

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> get_plan(std::size_t n) {
  return plan_cache().get(n);
}

// ---------------------------------------------------------------------------
// Allocation-free entry points
// ---------------------------------------------------------------------------

void fft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "fft_into: empty input");
  get_plan(in.size())->forward(in, out);
}

void ifft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "ifft_into: empty input");
  get_plan(in.size())->inverse(in, out);
}

void rfft_into(std::span<const double> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "rfft_into: empty input");
  get_plan(in.size())->forward_real(in, out);
}

void rfft_half_into(std::span<const double> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "rfft_half_into: empty input");
  get_plan(in.size())->forward_real_half(in, out);
}

void irfft_half_into(std::span<const Complex> in, std::span<double> out) {
  ftio::util::expect(!out.empty(), "irfft_half_into: empty output");
  get_plan(out.size())->inverse_real_half(in, out);
}

// ---------------------------------------------------------------------------
// detail: scalar radix-2 reference kernel
// ---------------------------------------------------------------------------

namespace detail {

Radix2Tables::Radix2Tables(std::size_t n) {
  ftio::util::expect(is_power_of_two(n), "Radix2Tables: n must be 2^k");
  bitrev = build_bitrev(n);
  twiddle.resize(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) twiddle[j] = unit_root(j, n);
}

namespace {

template <bool Invert>
void radix2_core(std::span<Complex> a,
                 const std::vector<std::uint32_t>& bitrev,
                 const std::vector<Complex>& twiddle) {
  const std::size_t n = a.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const Complex u = a[i];
    const Complex v = a[i + 1];
    a[i] = u + v;
    a[i + 1] = u - v;
  }
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t stride = n / len;  // twiddle table stride
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        Complex w = twiddle[j * stride];
        if constexpr (Invert) w = std::conj(w);
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
      }
    }
  }
}

}  // namespace

void radix2_scalar(std::span<Complex> a, const Radix2Tables& tables,
                   bool invert) {
  ftio::util::expect(a.size() == tables.bitrev.size() || a.size() <= 1,
                     "radix2_scalar: size mismatch");
  if (a.size() < 2) return;
  if (invert) {
    radix2_core<true>(a, tables.bitrev, tables.twiddle);
  } else {
    radix2_core<false>(a, tables.bitrev, tables.twiddle);
  }
}

}  // namespace detail

}  // namespace ftio::signal
