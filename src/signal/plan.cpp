#include "signal/plan.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <future>
#include <list>
#include <mutex>
#include <numbers>
#include <unordered_map>
#include <utility>

#include "util/annotated.hpp"
#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ftio::signal {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// exp(-2*pi*i*k/n) with the quarter-period points snapped to their exact
/// values. sin(pi) rounds to ~1.22e-16 rather than 0, and that residue
/// multiplied into a nonzero bin turns an exactly-zero spectrum line into
/// noise (visible on constant signals, whose off-DC bins cancel exactly).
/// The planar aliasing contract shared by every planar entry point: an
/// input lane and an output lane must either be the same array (full
/// alias, the documented in-place form) or not overlap at all. Partial
/// overlap silently corrupts the permuted gather, so Debug/sanitizer
/// builds reject it here instead of producing a plausible wrong
/// spectrum.
inline bool alias_full_or_disjoint(const double* in, const double* out,
                                   std::size_t n) {
  if (in == out) return true;
  return in + n <= out || out + n <= in;
}

Complex unit_root(std::size_t k, std::size_t n) {
  if (k == 0) return Complex(1.0, 0.0);
  if (4 * k == n) return Complex(0.0, -1.0);
  if (2 * k == n) return Complex(-1.0, 0.0);
  if (4 * k == 3 * n) return Complex(0.0, 1.0);
  const double angle = -kTwoPi * static_cast<double>(k) /
                       static_cast<double>(n);
  return Complex(std::cos(angle), std::sin(angle));
}

/// Bit-reversal permutation for a power-of-two n, the classic in-place
/// increment loop stored once. Shared by the plan constructor and the
/// detail:: reference tables (the kernels are independent; the
/// permutation is just data).
std::vector<std::uint32_t> build_bitrev(std::size_t n) {
  std::vector<std::uint32_t> bitrev(n);
  if (n < 2) return bitrev;
  bitrev[0] = 0;
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    bitrev[i] = static_cast<std::uint32_t>(j);
  }
  return bitrev;
}

/// Calls fn(p) for every node of length `len` in the split-radix
/// recursion tree over a size-n root — the classic is/id block
/// enumeration (Sorensen et al.): positions of size-len sub-transforms
/// in bit-reversed data are exactly these scattered arithmetic runs.
template <class Fn>
void for_each_split_node(std::size_t n, std::size_t len, Fn&& fn) {
  std::size_t ix = 0;
  std::size_t id = 2 * len;
  while (ix < n) {
    for (std::size_t p = ix; p < n; p += id) fn(p);
    ix = 2 * id - len;
    id *= 4;
  }
}

/// Per-thread scratch. Each member is dedicated to one call site so that
/// nested transforms (forward_real_half -> half plan -> Bluestein ->
/// power-of-two core) never step on each other's buffer:
///   split core — re/im: the planar real/imag lanes every interleaved
///                power-of-two transform (and the packed real path) runs
///                on; planar entry points run in caller buffers instead
///   re2/im2    — secondary planar scratch: the linearised fold of the
///                blocked inverse-real path, and the copy that makes the
///                planar entry points alias-safe
///   hre/him    — half-spectrum lanes backing the interleaved
///                rfft_half/irfft_half adapters
///   bluestein  — conv: the m-point convolution buffer
///   inverse    — conj: conjugated input for the non-pow2 inverse
///   real path  — packed/half: the N/2 packed signal and its spectrum
///                (also the complexified input for the odd-N fallback,
///                and the interleaved edge of the non-pow2 planar path)
/// Buffers only grow, so steady-state transforms do no allocation at all.
struct Workspace {
  std::vector<double> re;
  std::vector<double> im;
  std::vector<double> re2;
  std::vector<double> im2;
  std::vector<double> hre;
  std::vector<double> him;
  std::vector<double> bre;  ///< transposed batch-tile lanes (batch entry
  std::vector<double> bim;  ///  points only; never nested)
  std::vector<Complex> conv;
  std::vector<Complex> conj;
  std::vector<Complex> packed;
  std::vector<Complex> half;
};

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

// ---------------------------------------------------------------------------
// Bit-reversal permutation: simple and cache-blocked (COBRA) forms
// ---------------------------------------------------------------------------

constexpr std::size_t kTileBits = 5;
constexpr std::size_t kTile = std::size_t{1} << kTileBits;  // 32x32 tiles

/// Blocked out[i] = in[bitrev[i]] for n >= 2^(2*kTileBits). Index i is
/// split (hi:mid:lo) with kTileBits hi/lo bits; for each mid value the
/// 32x32 (hi, lo) tile is gathered with stride-1 reads, transposed
/// through an L1-resident buffer, and written with stride-1 stores —
/// both big arrays stream one 256-byte run at a time instead of striding
/// across the whole array per element (Carter & Gatlin's COBRA).
void permute_planar_blocked(const std::uint32_t* bitrev, std::size_t n,
                            const double* in_re, const double* in_im,
                            double* out_re, double* out_im) {
  const unsigned sh =
      static_cast<unsigned>(std::countr_zero(n)) - kTileBits;
  const std::size_t mid = n >> (2 * kTileBits);
  std::uint8_t revt[kTile];  // kTileBits-bit reversal, read off the table
  for (std::size_t i = 0; i < kTile; ++i) {
    revt[i] = static_cast<std::uint8_t>(bitrev[i] >> sh);
  }
  double tre[kTile * kTile];
  double tim[kTile * kTile];
  for (std::size_t m = 0; m < mid; ++m) {
    const std::size_t mr = bitrev[m << kTileBits] >> kTileBits;
    for (std::size_t jh = 0; jh < kTile; ++jh) {
      const double* __restrict sr = in_re + (jh << sh) + (m << kTileBits);
      const double* __restrict si = in_im + (jh << sh) + (m << kTileBits);
      for (std::size_t jl = 0; jl < kTile; ++jl) {
        const std::size_t slot =
            static_cast<std::size_t>(revt[jl]) * kTile + jh;
        tre[slot] = sr[jl];
        tim[slot] = si[jl];
      }
    }
    for (std::size_t ih = 0; ih < kTile; ++ih) {
      double* __restrict dr = out_re + (ih << sh) + (mr << kTileBits);
      double* __restrict di = out_im + (ih << sh) + (mr << kTileBits);
      const double* __restrict rr = tre + ih * kTile;
      const double* __restrict ri = tim + ih * kTile;
      for (std::size_t il = 0; il < kTile; ++il) {
        dr[il] = rr[revt[il]];
        di[il] = ri[revt[il]];
      }
    }
  }
}

/// Blocked deinterleaving gather, same tiling with paired source reads.
void permute_pairs_blocked(const std::uint32_t* bitrev, std::size_t n,
                           const double* pairs, double* out_re,
                           double* out_im) {
  const unsigned sh =
      static_cast<unsigned>(std::countr_zero(n)) - kTileBits;
  const std::size_t mid = n >> (2 * kTileBits);
  std::uint8_t revt[kTile];
  for (std::size_t i = 0; i < kTile; ++i) {
    revt[i] = static_cast<std::uint8_t>(bitrev[i] >> sh);
  }
  double tre[kTile * kTile];
  double tim[kTile * kTile];
  for (std::size_t m = 0; m < mid; ++m) {
    const std::size_t mr = bitrev[m << kTileBits] >> kTileBits;
    for (std::size_t jh = 0; jh < kTile; ++jh) {
      const double* __restrict src =
          pairs + 2 * ((jh << sh) + (m << kTileBits));
      for (std::size_t jl = 0; jl < kTile; ++jl) {
        const std::size_t slot =
            static_cast<std::size_t>(revt[jl]) * kTile + jh;
        tre[slot] = src[2 * jl];
        tim[slot] = src[2 * jl + 1];
      }
    }
    for (std::size_t ih = 0; ih < kTile; ++ih) {
      double* __restrict dr = out_re + (ih << sh) + (mr << kTileBits);
      double* __restrict di = out_im + (ih << sh) + (mr << kTileBits);
      const double* __restrict rr = tre + ih * kTile;
      const double* __restrict ri = tim + ih * kTile;
      for (std::size_t il = 0; il < kTile; ++il) {
        dr[il] = rr[revt[il]];
        di[il] = ri[revt[il]];
      }
    }
  }
}

}  // namespace

namespace detail {

void bitrev_permute_planar(const std::uint32_t* bitrev, std::size_t n,
                           const double* in_re, const double* in_im,
                           double* out_re, double* out_im) {
  if (n >= kBlockedBitrevMinN) {
    permute_planar_blocked(bitrev, n, in_re, in_im, out_re, out_im);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = bitrev[i];
    out_re[i] = in_re[s];
    out_im[i] = in_im[s];
  }
}

void bitrev_permute_pairs(const std::uint32_t* bitrev, std::size_t n,
                          const double* pairs, double* out_re,
                          double* out_im) {
  if (n >= kBlockedBitrevMinN) {
    permute_pairs_blocked(bitrev, n, pairs, out_re, out_im);
    return;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t s = 2 * static_cast<std::size_t>(bitrev[i]);
    out_re[i] = pairs[s];
    out_im[i] = pairs[s + 1];
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// FftPlan
// ---------------------------------------------------------------------------

FftPlan::FftPlan(std::size_t n) : n_(n), pow2_(is_power_of_two(n)) {
  ftio::util::expect(n >= 1, "FftPlan: size must be >= 1");
  ftio::util::expect(n <= (std::size_t{1} << 31),
                     "FftPlan: size exceeds 2^31");

  if (pow2_ && n_ >= 2) {
    bitrev_ = build_bitrev(n_);

    if (n_ >= 4) {
      // Leaf schedule for the fused (2,4) base pass: enumerate the
      // size-2 and size-4 nodes of the split-radix tree and type every
      // aligned 4-block. The tree guarantees each block is either one
      // size-4 node or a pair of size-2 nodes; expect() pins that
      // invariant so a schedule bug fails at plan build, not as silent
      // numerical corruption.
      std::vector<std::uint8_t> is2(n_ / 2, 0);
      for_each_split_node(n_, 2, [&](std::size_t p) { is2[p / 2] = 1; });
      base4_.assign(n_ / 4, 0);
      for_each_split_node(n_, 4, [&](std::size_t p) { base4_[p / 4] = 1; });
      for (std::size_t b = 0; b < base4_.size(); ++b) {
        if (base4_[b]) {
          ftio::util::expect(is2[2 * b] && !is2[2 * b + 1],
                             "FftPlan: bad split-radix leaf schedule");
        } else {
          ftio::util::expect(is2[2 * b] && is2[2 * b + 1],
                             "FftPlan: bad split-radix leaf schedule");
        }
      }
    }

    // Combine stages of length 8..N with the (w^k, w^{3k}) twiddle pair,
    // all folded out of one recursive root table: the stage-L twiddle
    // exp(-2*pi*i*k/L) is the root-stage twiddle at index k*N/L, bit for
    // bit — scaling the angle's numerator and denominator by the same
    // power of two commutes with IEEE rounding, and the quarter-period
    // snap conditions scale identically. Only the two length-N/4 root
    // tables pay a cos/sin evaluation (~N/2 calls); every shorter stage
    // is a strided copy, which roughly halves the trigonometry that
    // dominated cold plan construction.
    if (n_ >= 8) {
      const std::size_t root_quarter = n_ / 4;
      std::vector<double> rw1re(root_quarter), rw1im(root_quarter);
      std::vector<double> rw3re(root_quarter), rw3im(root_quarter);
      for (std::size_t k = 0; k < root_quarter; ++k) {
        const Complex w1 = unit_root(k, n_);
        const Complex w3 = unit_root(3 * k, n_);
        rw1re[k] = w1.real();
        rw1im[k] = w1.imag();
        rw3re[k] = w3.real();
        rw3im[k] = w3.imag();
      }
      for (std::size_t len = 8; len < n_; len <<= 1) {
        SplitStage stage;
        stage.len = len;
        const std::size_t quarter = len / 4;
        const std::size_t step = n_ / len;
        stage.w1re.resize(quarter);
        stage.w1im.resize(quarter);
        stage.w3re.resize(quarter);
        stage.w3im.resize(quarter);
        for (std::size_t k = 0; k < quarter; ++k) {
          stage.w1re[k] = rw1re[k * step];
          stage.w1im[k] = rw1im[k * step];
          stage.w3re[k] = rw3re[k * step];
          stage.w3im[k] = rw3im[k * step];
        }
        stages_.push_back(std::move(stage));
      }
      SplitStage root;
      root.len = n_;
      root.w1re = std::move(rw1re);
      root.w1im = std::move(rw1im);
      root.w3re = std::move(rw3re);
      root.w3im = std::move(rw3im);
      stages_.push_back(std::move(root));
    }
  } else if (!pow2_) {
    m_ = next_power_of_two(2 * n_ - 1);
  }
}

namespace {

/// One split-radix L-combine over planar lanes rooted at `re`/`im`
/// (an L-long block in bit-reversed order whose halves/quarters already
/// hold their sub-spectra): U = first half, Z = third quarter, Z' =
/// fourth quarter. For k < L/4, with w = exp(-2*pi*i*k/L):
///   t1 = w^k Z_k + w^{3k} Z'_k        t2 = w^k Z_k - w^{3k} Z'_k
///   X_k = U_k + t1                    X_{k+L/2}  = U_k - t1
///   X_{k+L/4} = U_{k+L/4} -+ i t2     X_{k+3L/4} = U_{k+L/4} +- i t2
/// (upper signs forward, lower inverse; inverse also conjugates the
/// twiddles). Four loads and four stores per k across four disjoint
/// stride-1 lanes — the shape auto-vectorisers handle.
template <bool Inv>
void split_combine(double* re, double* im, std::size_t quarter,
                   const double* w1re, const double* w1im,
                   const double* w3re, const double* w3im) {
  double* __restrict ur = re;
  double* __restrict ui = im;
  double* __restrict vr = re + quarter;
  double* __restrict vi = im + quarter;
  double* __restrict zr = re + 2 * quarter;
  double* __restrict zi = im + 2 * quarter;
  double* __restrict sr = re + 3 * quarter;
  double* __restrict si = im + 3 * quarter;
  const double* __restrict w1r = w1re;
  const double* __restrict w1i = w1im;
  const double* __restrict w3r = w3re;
  const double* __restrict w3i = w3im;
  for (std::size_t k = 0; k < quarter; ++k) {
    const double a1r = w1r[k];
    const double a1i = Inv ? -w1i[k] : w1i[k];
    const double a3r = w3r[k];
    const double a3i = Inv ? -w3i[k] : w3i[k];
    const double tzr = a1r * zr[k] - a1i * zi[k];
    const double tzi = a1r * zi[k] + a1i * zr[k];
    const double tsr = a3r * sr[k] - a3i * si[k];
    const double tsi = a3r * si[k] + a3i * sr[k];
    const double t1r = tzr + tsr, t1i = tzi + tsi;
    const double t2r = tzr - tsr, t2i = tzi - tsi;
    const double u0r = ur[k], u0i = ui[k];
    const double u1r = vr[k], u1i = vi[k];
    ur[k] = u0r + t1r;
    ui[k] = u0i + t1i;
    zr[k] = u0r - t1r;
    zi[k] = u0i - t1i;
    if constexpr (Inv) {
      vr[k] = u1r - t2i;
      vi[k] = u1i + t2r;
      sr[k] = u1r + t2i;
      si[k] = u1i - t2r;
    } else {
      vr[k] = u1r + t2i;
      vi[k] = u1i - t2r;
      sr[k] = u1r - t2i;
      si[k] = u1i + t2r;
    }
  }
}

// ---------------------------------------------------------------------------
// Batched stage-major kernels. A batch group is kBatchGroup rows stored
// interleaved down the batch axis: element k of group row g lives at
// lane[k * kBatchGroup + g]. Every split-radix pass keeps its original
// stride-1 loop shape — the index space just grows by the group factor,
// with the twiddle tables duplicated group-wise so twiddle loads stay
// vectorisable — which means the long combine stages vectorise exactly
// like the single-signal core while the short L=8/16 combines (2-4
// iteration loops there) get kBatchGroup times the trip count and
// vectorise down the batch axis. The arithmetic per row is the verbatim
// single-signal formulas (the L-combine literally reuses split_combine;
// plan.cpp is compiled with -ffp-contract=off), so row b of a batch call
// is bit-identical to the single-signal call on row b.
// ---------------------------------------------------------------------------

/// Rows per interleaved batch group. Measured on the 1-core container, 2
/// beats 4 and 8: the kernels are load/store- and L1-traffic-bound, so a
/// small group (working set 2 x N x 16 B, twiddle streams only 2x) that
/// keeps the depth-first sub-blocks L1-resident wins over wider groups
/// whose extra SIMD lanes the memory ports cannot feed.
constexpr std::size_t kBatchGroup = 2;

// The batch kernels are explicitly SIMD: every loop below is free of
// loop-carried dependencies (each iteration touches only its own index
// across disjoint lanes), which `#pragma omp simd` asserts so the
// vectoriser stops versioning for aliasing and emits packed code — the
// single-signal kernels' 12-stream butterflies defeat GCC's cost model
// and run scalar, which is exactly the gap the batch layout closes. On
// x86-64 each kernel additionally carries a runtime-dispatched
// x86-64-v3 clone (FFTW-style), so the portable SSE2 binary runs the
// batch axis 256 bits wide on AVX2 hosts. plan.cpp is compiled with
// -ffp-contract=off, so every clone performs the same IEEE operations
// and batch results stay bit-identical to the single-signal path.
// GCC only: clang's target_clones support on function templates is not
// reliable across the versions CI builds with; its builds simply run the
// portable codegen (still correct, still SIMD via the pragmas — and the
// FTIO_X86_64_V3 build compiles everything at v3 anyway).
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    defined(__has_attribute)
#if __has_attribute(target_clones)
#define FTIO_BATCH_KERNEL \
  __attribute__((target_clones("default", "arch=x86-64-v3")))
#endif
#endif
#ifndef FTIO_BATCH_KERNEL
#define FTIO_BATCH_KERNEL
#endif

/// The fused (2,4) base pass of split_iterative over an interleaved
/// group: per 4-block the G-wide butterflies are contiguous 4*G doubles
/// per lane.
template <bool Inv>
FTIO_BATCH_KERNEL void gbatch_base_pass(double* __restrict re,
                                        double* __restrict im,
                                        std::size_t n,
                                        const std::uint8_t* __restrict t4) {
  constexpr std::size_t G = kBatchGroup;
  for (std::size_t i = 0, b = 0; i < n; i += 4, ++b) {
    double* __restrict r = re + i * G;
    double* __restrict m = im + i * G;
    if (t4[b]) {
#pragma omp simd
      for (std::size_t g = 0; g < G; ++g) {
        const double ar = r[g], ai = m[g];
        const double br = r[G + g], bi = m[G + g];
        const double cr = r[2 * G + g], ci = m[2 * G + g];
        const double dr = r[3 * G + g], di = m[3 * G + g];
        const double t0r = ar + br, t0i = ai + bi;
        const double t1r = ar - br, t1i = ai - bi;
        const double t2r = cr + dr, t2i = ci + di;
        const double t3r = cr - dr, t3i = ci - di;
        r[g] = t0r + t2r;
        m[g] = t0i + t2i;
        r[2 * G + g] = t0r - t2r;
        m[2 * G + g] = t0i - t2i;
        if constexpr (Inv) {
          r[G + g] = t1r - t3i;
          m[G + g] = t1i + t3r;
          r[3 * G + g] = t1r + t3i;
          m[3 * G + g] = t1i - t3r;
        } else {
          r[G + g] = t1r + t3i;
          m[G + g] = t1i - t3r;
          r[3 * G + g] = t1r - t3i;
          m[3 * G + g] = t1i + t3r;
        }
      }
    } else {
      // Two independent size-2 nodes: (columns i, i+1) and (i+2, i+3).
#pragma omp simd
      for (std::size_t g = 0; g < G; ++g) {
        const double ar = r[g], ai = m[g];
        const double br = r[G + g], bi = m[G + g];
        const double cr = r[2 * G + g], ci = m[2 * G + g];
        const double dr = r[3 * G + g], di = m[3 * G + g];
        r[g] = ar + br;
        m[g] = ai + bi;
        r[G + g] = ar - br;
        m[G + g] = ai - bi;
        r[2 * G + g] = cr + dr;
        m[2 * G + g] = ci + di;
        r[3 * G + g] = cr - dr;
        m[3 * G + g] = ci - di;
      }
    }
  }
}

/// gbatch_base_pass with the bit-reversal gather fused in: the butterfly
/// operands load straight from the G source rows (the elements the base
/// pass was about to read anyway) and only the results are written to the
/// interleaved scratch — sequentially — so the separate permutation pass
/// over the group working set disappears. Loads stream each row's
/// L1-sized window; `sel` maps a permuted index to its lane offset within
/// a row (identity for planar lanes, 2*s / 2*s+1 for packed real pairs).
template <bool Inv, class SelRe, class SelIm>
FTIO_BATCH_KERNEL void gbatch_base_gather(
    const double* __restrict row_re, const double* __restrict row_im,
    std::size_t stride, const std::uint32_t* __restrict bp, std::size_t n,
    const std::uint8_t* __restrict t4, double* __restrict re,
    double* __restrict im, SelRe sel_re, SelIm sel_im) {
  constexpr std::size_t G = kBatchGroup;
  for (std::size_t i = 0, b = 0; i < n; i += 4, ++b) {
    const std::size_t s0 = bp[i];
    const std::size_t s1 = bp[i + 1];
    const std::size_t s2 = bp[i + 2];
    const std::size_t s3 = bp[i + 3];
    // Prefetch the next block's operand lines: the bit-reversed columns
    // land on fresh cache lines in every row window, and the windows
    // together exceed L1, so demand loads would stall otherwise.
    if (i + 16 < n) {
      const std::size_t p0 = bp[i + 12];
      const std::size_t p2 = bp[i + 14];
      const bool planar = row_im != row_re;
      for (std::size_t g = 0; g < G; ++g) {
        const double* __restrict rr = row_re + g * stride;
        __builtin_prefetch(rr + sel_re(p0));
        __builtin_prefetch(rr + sel_re(p2));
        if (planar) {
          const double* __restrict ri = row_im + g * stride;
          __builtin_prefetch(ri + sel_im(p0));
          __builtin_prefetch(ri + sel_im(p2));
        }
      }
    }
    double* __restrict r = re + i * G;
    double* __restrict m = im + i * G;
    if (t4[b]) {
#pragma omp simd
      for (std::size_t g = 0; g < G; ++g) {
        const double* __restrict rr = row_re + g * stride;
        const double* __restrict ri = row_im + g * stride;
        const double ar = rr[sel_re(s0)], ai = ri[sel_im(s0)];
        const double br = rr[sel_re(s1)], bi = ri[sel_im(s1)];
        const double cr = rr[sel_re(s2)], ci = ri[sel_im(s2)];
        const double dr = rr[sel_re(s3)], di = ri[sel_im(s3)];
        const double t0r = ar + br, t0i = ai + bi;
        const double t1r = ar - br, t1i = ai - bi;
        const double t2r = cr + dr, t2i = ci + di;
        const double t3r = cr - dr, t3i = ci - di;
        r[g] = t0r + t2r;
        m[g] = t0i + t2i;
        r[2 * G + g] = t0r - t2r;
        m[2 * G + g] = t0i - t2i;
        if constexpr (Inv) {
          r[G + g] = t1r - t3i;
          m[G + g] = t1i + t3r;
          r[3 * G + g] = t1r + t3i;
          m[3 * G + g] = t1i - t3r;
        } else {
          r[G + g] = t1r + t3i;
          m[G + g] = t1i - t3r;
          r[3 * G + g] = t1r - t3i;
          m[3 * G + g] = t1i + t3r;
        }
      }
    } else {
#pragma omp simd
      for (std::size_t g = 0; g < G; ++g) {
        const double* __restrict rr = row_re + g * stride;
        const double* __restrict ri = row_im + g * stride;
        const double ar = rr[sel_re(s0)], ai = ri[sel_im(s0)];
        const double br = rr[sel_re(s1)], bi = ri[sel_im(s1)];
        const double cr = rr[sel_re(s2)], ci = ri[sel_im(s2)];
        const double dr = rr[sel_re(s3)], di = ri[sel_im(s3)];
        r[g] = ar + br;
        m[g] = ai + bi;
        r[G + g] = ar - br;
        m[G + g] = ai - bi;
        r[2 * G + g] = cr + dr;
        m[2 * G + g] = ci + di;
        r[3 * G + g] = cr - dr;
        m[3 * G + g] = ci - di;
      }
    }
  }
}

/// split_combine over the G-times-larger interleaved index space with the
/// group-duplicated twiddle streams: identical per-row formulas, explicit
/// SIMD (the quarter*G-long loop is dependency-free). Kept as a plain
/// always-inline body so the cloned kernels below absorb it into their
/// own ISA level instead of paying a dispatched call per tree node.
template <bool Inv>
[[gnu::always_inline]] inline void gbatch_combine_body(
    double* __restrict re, double* __restrict im, std::size_t quarter,
    const double* __restrict w1r, const double* __restrict w1i,
    const double* __restrict w3r, const double* __restrict w3i) {
  double* __restrict ur = re;
  double* __restrict ui = im;
  double* __restrict vr = re + quarter;
  double* __restrict vi = im + quarter;
  double* __restrict zr = re + 2 * quarter;
  double* __restrict zi = im + 2 * quarter;
  double* __restrict sr = re + 3 * quarter;
  double* __restrict si = im + 3 * quarter;
#pragma omp simd
  for (std::size_t k = 0; k < quarter; ++k) {
    const double a1r = w1r[k];
    const double a1i = Inv ? -w1i[k] : w1i[k];
    const double a3r = w3r[k];
    const double a3i = Inv ? -w3i[k] : w3i[k];
    const double tzr = a1r * zr[k] - a1i * zi[k];
    const double tzi = a1r * zi[k] + a1i * zr[k];
    const double tsr = a3r * sr[k] - a3i * si[k];
    const double tsi = a3r * si[k] + a3i * sr[k];
    const double t1r = tzr + tsr, t1i = tzi + tsi;
    const double t2r = tzr - tsr, t2i = tzi - tsi;
    const double u0r = ur[k], u0i = ui[k];
    const double u1r = vr[k], u1i = vi[k];
    ur[k] = u0r + t1r;
    ui[k] = u0i + t1i;
    zr[k] = u0r - t1r;
    zi[k] = u0i - t1i;
    if constexpr (Inv) {
      vr[k] = u1r - t2i;
      vi[k] = u1i + t2r;
      sr[k] = u1r + t2i;
      si[k] = u1i - t2r;
    } else {
      vr[k] = u1r + t2i;
      vi[k] = u1i - t2r;
      sr[k] = u1r - t2i;
      si[k] = u1i + t2r;
    }
  }
}

/// One combine node (the block-top combine of the depth-first recursion).
template <bool Inv>
FTIO_BATCH_KERNEL void gbatch_combine(double* __restrict re,
                                      double* __restrict im,
                                      std::size_t quarter,
                                      const double* __restrict w1r,
                                      const double* __restrict w1i,
                                      const double* __restrict w3r,
                                      const double* __restrict w3i) {
  gbatch_combine_body<Inv>(re, im, quarter, w1r, w1i, w3r, w3i);
}

/// One whole combine stage over a leaf block: the is/id node enumeration
/// runs inside the cloned kernel, so the short stages (hundreds of
/// length-8/16 nodes per block) pay one dispatched call per stage
/// instead of one per node.
template <bool Inv>
FTIO_BATCH_KERNEL void gbatch_stage_sweep(
    double* __restrict re, double* __restrict im, std::size_t block_len,
    std::size_t stage_len, std::size_t g, const double* __restrict w1r,
    const double* __restrict w1i, const double* __restrict w3r,
    const double* __restrict w3i) {
  const std::size_t quarterG = (stage_len / 4) * g;
  std::size_t ix = 0;
  std::size_t id = 2 * stage_len;
  while (ix < block_len) {
    for (std::size_t p = ix; p < block_len; p += id) {
      gbatch_combine_body<Inv>(re + p * g, im + p * g, quarterG, w1r, w1i,
                               w3r, w3i);
    }
    ix = 2 * id - stage_len;
    id *= 4;
  }
}

}  // namespace

template <bool Inv>
void FftPlan::split_iterative(double* re, double* im, std::size_t len,
                              std::size_t pos) const {
  double* __restrict r = re + pos;
  double* __restrict m = im + pos;
  if (len == 2) {
    const double ar = r[0], ai = m[0];
    const double br = r[1], bi = m[1];
    r[0] = ar + br;
    m[0] = ai + bi;
    r[1] = ar - br;
    m[1] = ai - bi;
    return;
  }
  // Fused (2,4) base pass: every 4-block is either one 4-point DFT
  // (size-4 node, type 1) or two independent radix-2 butterflies (a pair
  // of size-2 nodes, type 0); the radix-2 halves t0..t3 are shared.
  const std::uint8_t* __restrict t4 = base4_.data() + pos / 4;
  for (std::size_t i = 0, b = 0; i < len; i += 4, ++b) {
    const double ar = r[i], ai = m[i];
    const double br = r[i + 1], bi = m[i + 1];
    const double cr = r[i + 2], ci = m[i + 2];
    const double dr = r[i + 3], di = m[i + 3];
    const double t0r = ar + br, t0i = ai + bi;
    const double t1r = ar - br, t1i = ai - bi;
    const double t2r = cr + dr, t2i = ci + di;
    const double t3r = cr - dr, t3i = ci - di;
    if (t4[b]) {
      r[i] = t0r + t2r;
      m[i] = t0i + t2i;
      r[i + 2] = t0r - t2r;
      m[i + 2] = t0i - t2i;
      if constexpr (Inv) {
        r[i + 1] = t1r - t3i;
        m[i + 1] = t1i + t3r;
        r[i + 3] = t1r + t3i;
        m[i + 3] = t1i - t3r;
      } else {
        r[i + 1] = t1r + t3i;
        m[i + 1] = t1i - t3r;
        r[i + 3] = t1r - t3i;
        m[i + 3] = t1i + t3r;
      }
    } else {
      r[i] = t0r;
      m[i] = t0i;
      r[i + 1] = t1r;
      m[i + 1] = t1i;
      r[i + 2] = t2r;
      m[i + 2] = t2i;
      r[i + 3] = t3r;
      m[i + 3] = t3i;
    }
  }
  // Combine stages 8..len over the nodes the is/id enumeration names.
  for (const auto& st : stages_) {
    if (st.len > len) break;
    for_each_split_node(len, st.len, [&](std::size_t p) {
      split_combine<Inv>(r + p, m + p, st.len / 4, st.w1re.data(),
                         st.w1im.data(), st.w3re.data(), st.w3im.data());
    });
  }
}

template <bool Inv>
void FftPlan::split_subtree(double* re, double* im, std::size_t len,
                            std::size_t pos) const {
  if (len <= detail::kSplitRadixLeafLen) {
    split_iterative<Inv>(re, im, len, pos);
    return;
  }
  // Depth-first: finish each half/quarter while it is cache-resident,
  // then run the single top combine over the whole block.
  const std::size_t half = len / 2;
  const std::size_t quarter = len / 4;
  split_subtree<Inv>(re, im, half, pos);
  split_subtree<Inv>(re, im, quarter, pos + half);
  split_subtree<Inv>(re, im, quarter, pos + half + quarter);
  const auto& st =
      stages_[static_cast<std::size_t>(std::countr_zero(len)) - 3];
  split_combine<Inv>(re + pos, im + pos, quarter, st.w1re.data(),
                     st.w1im.data(), st.w3re.data(), st.w3im.data());
}

void FftPlan::split_passes(double* re, double* im, bool invert) const {
  if (invert) {
    split_subtree<true>(re, im, n_, 0);
  } else {
    split_subtree<false>(re, im, n_, 0);
  }
}

void FftPlan::ensure_batch_tables() const {
  std::call_once(batch_once_, [this] {
    batch_stages_.reserve(stages_.size());
    for (const auto& st : stages_) {
      SplitStage g;
      g.len = st.len;
      const std::size_t quarter = st.len / 4;
      g.w1re.resize(quarter * kBatchGroup);
      g.w1im.resize(quarter * kBatchGroup);
      g.w3re.resize(quarter * kBatchGroup);
      g.w3im.resize(quarter * kBatchGroup);
      for (std::size_t k = 0; k < quarter; ++k) {
        for (std::size_t r = 0; r < kBatchGroup; ++r) {
          g.w1re[k * kBatchGroup + r] = st.w1re[k];
          g.w1im[k * kBatchGroup + r] = st.w1im[k];
          g.w3re[k * kBatchGroup + r] = st.w3re[k];
          g.w3im[k * kBatchGroup + r] = st.w3im[k];
        }
      }
      batch_stages_.push_back(std::move(g));
    }
  });
}

template <bool Inv>
void FftPlan::split_passes_batch(double* re, double* im) const {
  // Precondition: n_ % 4 == 0 — every grouped batch path requires the
  // packed transform length to be at least 4 (n_ >= 8 at the real-input
  // entry points), so the (2,4) base pass always applies.
  gbatch_base_pass<Inv>(re, im, n_, base4_.data());
  split_stages_batch<Inv>(re, im);
}

template <bool Inv>
void FftPlan::split_stages_batch(double* re, double* im) const {
  split_subtree_batch<Inv>(re, im, n_, 0);
}

template <bool Inv>
void FftPlan::split_subtree_batch(double* re, double* im, std::size_t len,
                                  std::size_t pos) const {
  constexpr std::size_t G = kBatchGroup;
  if (len * G <= detail::kBatchLeafElems) {
    // Stage-major sweep of this block: every length-L combine runs across
    // the whole group (a valid topological order of the split-radix tree
    // — children always complete before their parent's combine, so each
    // row's values match the depth-first single-signal order bit for
    // bit). The L-combine is the single-signal split_combine arithmetic
    // on the G-times-larger index space with the group-duplicated
    // twiddle streams.
    for (const auto& st : batch_stages_) {
      if (st.len > len) break;
      gbatch_stage_sweep<Inv>(re + pos * G, im + pos * G, len, st.len, G,
                              st.w1re.data(), st.w1im.data(),
                              st.w3re.data(), st.w3im.data());
    }
    return;
  }
  const std::size_t half = len / 2;
  const std::size_t quarter = len / 4;
  split_subtree_batch<Inv>(re, im, half, pos);
  split_subtree_batch<Inv>(re, im, quarter, pos + half);
  split_subtree_batch<Inv>(re, im, quarter, pos + half + quarter);
  const auto& st =
      batch_stages_[static_cast<std::size_t>(std::countr_zero(len)) - 3];
  gbatch_combine<Inv>(re + pos * G, im + pos * G, (len / 4) * G,
                      st.w1re.data(), st.w1im.data(), st.w3re.data(),
                      st.w3im.data());
}

std::size_t FftPlan::batch_tile_rows(bool real_input) const {
  const std::size_t len = real_input ? n_ / 2 : n_;
  if (len < 2) return 1;
  const std::size_t per_row = 2 * len * sizeof(double);
  const std::size_t rows = detail::kBatchTileBytes / per_row;
  if (rows < kBatchGroup) return 1;
  return rows - rows % kBatchGroup;
}

template <bool Inv>
void FftPlan::planar_batch_group(std::size_t stride, const double* in_re,
                                 const double* in_im, double* out_re,
                                 double* out_im) const {
  constexpr std::size_t G = kBatchGroup;
  auto& ws = workspace();
  double* __restrict sre = ws.bre.data();
  double* __restrict sim = ws.bim.data();
  // The base pass runs fused with the bit-reversal gather: operands load
  // straight from the G source rows, results land sequentially in the
  // interleaved scratch. The group's entire input is consumed before any
  // output write, so fully aliased out lanes are safe (other rows are
  // never touched here).
  const auto id = [](std::size_t s) { return s; };
  gbatch_base_gather<Inv>(in_re, in_im, stride, bitrev_.data(), n_,
                          base4_.data(), sre, sim, id, id);
  split_stages_batch<Inv>(sre, sim);
  const double scale = 1.0 / static_cast<double>(n_);
  for (std::size_t g = 0; g < G; ++g) {
    double* __restrict orr = out_re + g * stride;
    double* __restrict ori = out_im + g * stride;
    const double* __restrict cr = sre + g;
    const double* __restrict ci = sim + g;
    if constexpr (Inv) {
      for (std::size_t k = 0; k < n_; ++k) {
        orr[k] = cr[k * G] * scale;
        ori[k] = ci[k * G] * scale;
      }
    } else {
      for (std::size_t k = 0; k < n_; ++k) {
        orr[k] = cr[k * G];
        ori[k] = ci[k * G];
      }
    }
  }
}

void FftPlan::forward_planar_batch(std::size_t batch, std::size_t stride,
                                   std::span<const double> in_re,
                                   std::span<const double> in_im,
                                   std::span<double> out_re,
                                   std::span<double> out_im) const {
  if (batch == 0) return;
  ftio::util::expect(stride >= n_,
                     "FftPlan::forward_planar_batch: stride < row length");
  const std::size_t need = (batch - 1) * stride + n_;
  ftio::util::expect(in_re.size() >= need && in_im.size() >= need &&
                         out_re.size() >= need && out_im.size() >= need,
                     "FftPlan::forward_planar_batch: lanes too short");
  FTIO_CONTRACT(
      alias_full_or_disjoint(in_re.data(), out_re.data(), need) &&
          alias_full_or_disjoint(in_im.data(), out_im.data(), need),
      "batch lanes must fully alias (same bases and stride) or not overlap");
  const bool grouped =
      pow2_ && n_ >= 4 && batch >= kBatchGroup && batch_tile_rows(false) > 1;
  std::size_t b = 0;
  if (grouped) {
    ensure_batch_tables();
    auto& ws = workspace();
    ws.bre.resize(n_ * kBatchGroup);
    ws.bim.resize(n_ * kBatchGroup);
    for (; b + kBatchGroup <= batch; b += kBatchGroup) {
      planar_batch_group<false>(stride, in_re.data() + b * stride,
                                in_im.data() + b * stride,
                                out_re.data() + b * stride,
                                out_im.data() + b * stride);
    }
  }
  for (; b < batch; ++b) {
    forward_planar(in_re.subspan(b * stride, n_),
                   in_im.subspan(b * stride, n_),
                   out_re.subspan(b * stride, n_),
                   out_im.subspan(b * stride, n_));
  }
}

void FftPlan::inverse_planar_batch(std::size_t batch, std::size_t stride,
                                   std::span<const double> in_re,
                                   std::span<const double> in_im,
                                   std::span<double> out_re,
                                   std::span<double> out_im) const {
  if (batch == 0) return;
  ftio::util::expect(stride >= n_,
                     "FftPlan::inverse_planar_batch: stride < row length");
  const std::size_t need = (batch - 1) * stride + n_;
  ftio::util::expect(in_re.size() >= need && in_im.size() >= need &&
                         out_re.size() >= need && out_im.size() >= need,
                     "FftPlan::inverse_planar_batch: lanes too short");
  FTIO_CONTRACT(
      alias_full_or_disjoint(in_re.data(), out_re.data(), need) &&
          alias_full_or_disjoint(in_im.data(), out_im.data(), need),
      "batch lanes must fully alias (same bases and stride) or not overlap");
  const bool grouped =
      pow2_ && n_ >= 4 && batch >= kBatchGroup && batch_tile_rows(false) > 1;
  std::size_t b = 0;
  if (grouped) {
    ensure_batch_tables();
    auto& ws = workspace();
    ws.bre.resize(n_ * kBatchGroup);
    ws.bim.resize(n_ * kBatchGroup);
    for (; b + kBatchGroup <= batch; b += kBatchGroup) {
      planar_batch_group<true>(stride, in_re.data() + b * stride,
                               in_im.data() + b * stride,
                               out_re.data() + b * stride,
                               out_im.data() + b * stride);
    }
  }
  for (; b < batch; ++b) {
    inverse_planar(in_re.subspan(b * stride, n_),
                   in_im.subspan(b * stride, n_),
                   out_re.subspan(b * stride, n_),
                   out_im.subspan(b * stride, n_));
  }
}

void FftPlan::rfft_half_batch_group(std::size_t in_stride, const double* in,
                                    std::size_t out_stride, double* out_re,
                                    double* out_im) const {
  constexpr std::size_t G = kBatchGroup;
  const std::size_t h = n_ / 2;
  auto& ws = workspace();
  double* __restrict sre = ws.bre.data();
  double* __restrict sim = ws.bim.data();
  // The half plan's base pass runs fused with the deinterleaving pair
  // gather: operand pair bitrev[k] of each row loads straight from the
  // packed real source, results land sequentially in the interleaved
  // scratch.
  gbatch_base_gather<false>(in, in, in_stride, half_->bitrev_.data(), h,
                            half_->base4_.data(), sre, sim,
                            [](std::size_t s) { return 2 * s; },
                            [](std::size_t s) { return 2 * s + 1; });
  half_->split_stages_batch<false>(sre, sim);
  // Single-sided unpack straight into the output rows, bin-major so the
  // twiddle pair and both source columns load once per bin for all rows.
  // Formulas verbatim from forward_real_half_planar's unpack.
  const double* __restrict twr = rtw_re_.data();
  const double* __restrict twi = rtw_im_.data();
  for (std::size_t g = 0; g < G; ++g) {
    const double z0r = sre[g], z0i = sim[g];
    out_re[g * out_stride] = z0r + z0i;
    out_im[g * out_stride] = 0.0;
    out_re[g * out_stride + h] = z0r - z0i;
    out_im[g * out_stride + h] = 0.0;
  }
  for (std::size_t k = 1; k < h; ++k) {
    const double wr = twr[k];
    const double wi = twi[k];
    const double* __restrict zkr = sre + k * G;
    const double* __restrict zki = sim + k * G;
    const double* __restrict zhr = sre + (h - k) * G;
    const double* __restrict zhi = sim + (h - k) * G;
    double* __restrict orow = out_re + k;
    double* __restrict irow = out_im + k;
#pragma omp simd
    for (std::size_t g = 0; g < G; ++g) {
      const double zr = zkr[g], zi = zki[g];
      const double zmr = zhr[g], zmi = -zhi[g];
      const double er = 0.5 * (zr + zmr);
      const double ei = 0.5 * (zi + zmi);
      const double odr = 0.5 * (zi - zmi);
      const double odi = -0.5 * (zr - zmr);
      orow[g * out_stride] = er + wr * odr - wi * odi;
      irow[g * out_stride] = ei + wr * odi + wi * odr;
    }
  }
}

void FftPlan::rfft_half_planar_batch_into(std::size_t batch,
                                          std::size_t in_stride,
                                          std::span<const double> in,
                                          std::size_t out_stride,
                                          std::span<double> out_re,
                                          std::span<double> out_im) const {
  if (batch == 0) return;
  const std::size_t bins = n_ / 2 + 1;
  ftio::util::expect(in_stride >= n_ && out_stride >= bins,
                     "FftPlan::rfft_half_planar_batch_into: stride too small");
  ftio::util::expect(
      in.size() >= (batch - 1) * in_stride + n_ &&
          out_re.size() >= (batch - 1) * out_stride + bins &&
          out_im.size() >= (batch - 1) * out_stride + bins,
      "FftPlan::rfft_half_planar_batch_into: lanes too short");
  bool grouped = n_ >= 8 && n_ % 2 == 0 && batch >= kBatchGroup &&
                 batch_tile_rows(true) > 1;
  if (grouped) {
    ensure_real_tables();
    grouped = half_->pow2_;
  }
  std::size_t b = 0;
  if (grouped) {
    half_->ensure_batch_tables();
    auto& ws = workspace();
    ws.bre.resize((n_ / 2) * kBatchGroup);
    ws.bim.resize((n_ / 2) * kBatchGroup);
    for (; b + kBatchGroup <= batch; b += kBatchGroup) {
      rfft_half_batch_group(in_stride, in.data() + b * in_stride,
                            out_stride, out_re.data() + b * out_stride,
                            out_im.data() + b * out_stride);
    }
  }
  for (; b < batch; ++b) {
    forward_real_half_planar(in.subspan(b * in_stride, n_),
                             out_re.subspan(b * out_stride, bins),
                             out_im.subspan(b * out_stride, bins));
  }
}

void FftPlan::irfft_half_batch_group(std::size_t in_stride,
                                     const double* in_re,
                                     const double* in_im,
                                     std::size_t out_stride,
                                     double* out) const {
  constexpr std::size_t G = kBatchGroup;
  const std::size_t h = n_ / 2;
  auto& ws = workspace();
  double* __restrict sre = ws.bre.data();
  double* __restrict sim = ws.bim.data();
  // Fold the half spectra back into packed half-size signals, scattering
  // into bit-reversed interleaved columns (bitrev[0] == 0, so the peeled
  // DC/Nyquist fold lands in column 0). Formulas verbatim from
  // inverse_real_half_planar's z0/z_at.
  const std::uint32_t* bp = half_->bitrev_.data();
  for (std::size_t g = 0; g < G; ++g) {
    const double dc = in_re[g * in_stride];
    const double ny = in_re[g * in_stride + h];
    sre[g] = 0.5 * (dc + ny);
    sim[g] = 0.5 * (dc - ny);
  }
  const double* __restrict rwr = rtw_re_.data();
  const double* __restrict rwi = rtw_im_.data();
  for (std::size_t k = 1; k < h; ++k) {
    const double wr = rwr[k];
    const double wi = rwi[k];
    const std::size_t d = bp[k];
    const double* __restrict akr = in_re + k;
    const double* __restrict aki = in_im + k;
    const double* __restrict bkr = in_re + (h - k);
    const double* __restrict bki = in_im + (h - k);
    double* __restrict dr = sre + d * G;
    double* __restrict di = sim + d * G;
#pragma omp simd
    for (std::size_t g = 0; g < G; ++g) {
      const double ar = akr[g * in_stride];
      const double ai = aki[g * in_stride];
      const double br = bkr[g * in_stride];
      const double bi = -bki[g * in_stride];
      const double er = 0.5 * (ar + br);
      const double ei = 0.5 * (ai + bi);
      const double fr = 0.5 * (ar - br);
      const double fi = 0.5 * (ai - bi);
      const double odr = wr * fr + wi * fi;
      const double odi = wr * fi - wi * fr;
      dr[g] = er - odi;
      di[g] = ei + odr;
    }
  }
  half_->split_passes_batch<true>(sre, sim);
  const double scale = 1.0 / static_cast<double>(h);
  for (std::size_t g = 0; g < G; ++g) {
    double* __restrict orow = out + g * out_stride;
    const double* __restrict cr = sre + g;
    const double* __restrict ci = sim + g;
#pragma omp simd
    for (std::size_t j = 0; j < h; ++j) {
      orow[2 * j] = cr[j * G] * scale;
      orow[2 * j + 1] = ci[j * G] * scale;
    }
  }
}

void FftPlan::irfft_half_planar_batch_into(std::size_t batch,
                                           std::size_t in_stride,
                                           std::span<const double> in_re,
                                           std::span<const double> in_im,
                                           std::size_t out_stride,
                                           std::span<double> out) const {
  if (batch == 0) return;
  const std::size_t bins = n_ / 2 + 1;
  ftio::util::expect(in_stride >= bins && out_stride >= n_,
                     "FftPlan::irfft_half_planar_batch_into: stride too "
                     "small");
  ftio::util::expect(
      in_re.size() >= (batch - 1) * in_stride + bins &&
          in_im.size() >= (batch - 1) * in_stride + bins &&
          out.size() >= (batch - 1) * out_stride + n_,
      "FftPlan::irfft_half_planar_batch_into: lanes too short");
  bool grouped = n_ >= 8 && n_ % 2 == 0 && batch >= kBatchGroup &&
                 batch_tile_rows(true) > 1;
  if (grouped) {
    ensure_real_tables();
    grouped = half_->pow2_;
  }
  std::size_t b = 0;
  if (grouped) {
    half_->ensure_batch_tables();
    auto& ws = workspace();
    ws.bre.resize((n_ / 2) * kBatchGroup);
    ws.bim.resize((n_ / 2) * kBatchGroup);
    for (; b + kBatchGroup <= batch; b += kBatchGroup) {
      irfft_half_batch_group(in_stride, in_re.data() + b * in_stride,
                             in_im.data() + b * in_stride, out_stride,
                             out.data() + b * out_stride);
    }
  }
  for (; b < batch; ++b) {
    inverse_real_half_planar(in_re.subspan(b * in_stride, bins),
                             in_im.subspan(b * in_stride, bins),
                             out.subspan(b * out_stride, n_));
  }
}

void FftPlan::pow2_transform(std::span<const Complex> in,
                             std::span<Complex> out, bool invert) const {
  const std::size_t n = n_;
  if (n == 1) {
    out[0] = in[0];
    return;
  }
  // Deinterleave into planar lanes, applying the bit-reversal permutation
  // during the gather (the input span is fully consumed before any write
  // to out, so in and out may alias). std::complex guarantees the
  // (re, im) pair layout the pairs gather reads.
  auto& ws = workspace();
  ws.re.resize(n);
  ws.im.resize(n);
  double* re = ws.re.data();
  double* im = ws.im.data();
  detail::bitrev_permute_pairs(bitrev_.data(), n,
                               reinterpret_cast<const double*>(in.data()),
                               re, im);
  split_passes(re, im, invert);
  for (std::size_t i = 0; i < n; ++i) out[i] = Complex(re[i], im[i]);
}

void FftPlan::pow2_inplace(std::span<Complex> a, bool invert) const {
  pow2_transform(a, a, invert);
}

void FftPlan::ensure_bluestein_tables() const {
  std::call_once(bluestein_once_, [this] {
    // Bluestein: chirp, and the FFT of the wrapped conjugate chirp — the
    // expensive part of the convolution, paid once per size on the first
    // complex transform.
    chirp_.resize(n_);
    for (std::size_t k = 0; k < n_; ++k) {
      // k^2 mod 2n avoids catastrophic phase error for large k.
      const std::size_t k2 = (k * k) % (2 * n_);
      const double angle = -std::numbers::pi * static_cast<double>(k2) /
                           static_cast<double>(n_);
      chirp_[k] = Complex(std::cos(angle), std::sin(angle));
    }
    sub_ = get_plan(m_);
    bhat_.assign(m_, Complex(0.0, 0.0));
    bhat_[0] = std::conj(chirp_[0]);
    for (std::size_t k = 1; k < n_; ++k) {
      bhat_[k] = bhat_[m_ - k] = std::conj(chirp_[k]);
    }
    sub_->pow2_inplace(bhat_, /*invert=*/false);
  });
}

void FftPlan::ensure_real_tables() const {
  std::call_once(real_once_, [this] {
    half_ = get_plan(n_ / 2);
    // The packed real path always runs the half plan's complex transform,
    // so finish its lazy state here rather than on first use.
    half_->prepare(/*for_real_input=*/false);
    rtw_re_.resize(n_ / 2 + 1);
    rtw_im_.resize(n_ / 2 + 1);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      const Complex w = unit_root(k, n_);
      rtw_re_[k] = w.real();
      rtw_im_[k] = w.imag();
    }
  });
}

void FftPlan::prepare(bool for_real_input) const {
  if (for_real_input && n_ >= 2 && n_ % 2 == 0) {
    ensure_real_tables();
    return;
  }
  if (!pow2_ && n_ > 1) ensure_bluestein_tables();
}

void FftPlan::bluestein_forward(std::span<const Complex> in,
                                std::span<Complex> out) const {
  ensure_bluestein_tables();
  auto& conv = workspace().conv;
  conv.assign(m_, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n_; ++k) conv[k] = in[k] * chirp_[k];

  sub_->pow2_inplace(conv, /*invert=*/false);
  for (std::size_t i = 0; i < m_; ++i) conv[i] *= bhat_[i];
  sub_->pow2_inplace(conv, /*invert=*/true);

  const double scale = 1.0 / static_cast<double>(m_);
  for (std::size_t k = 0; k < n_; ++k) {
    out[k] = conv[k] * scale * chirp_[k];
  }
}

void FftPlan::forward(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward: size mismatch");
  if (pow2_) {
    pow2_transform(in, out, /*invert=*/false);
    return;
  }
  bluestein_forward(in, out);
}

void FftPlan::inverse(std::span<const Complex> in,
                      std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::inverse: size mismatch");
  const double scale = 1.0 / static_cast<double>(n_);
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (pow2_) {
    pow2_transform(in, out, /*invert=*/true);
    for (auto& v : out) v *= scale;
    return;
  }
  // Non power-of-two inverse via conjugation: ifft(x) = conj(fft(conj(x)))/N.
  auto& cj = workspace().conj;
  cj.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) cj[k] = std::conj(in[k]);
  bluestein_forward(cj, out);
  for (auto& v : out) v = std::conj(v) * scale;
}

void FftPlan::forward_planar(std::span<const double> in_re,
                             std::span<const double> in_im,
                             std::span<double> out_re,
                             std::span<double> out_im) const {
  ftio::util::expect(in_re.size() == n_ && in_im.size() == n_ &&
                         out_re.size() == n_ && out_im.size() == n_,
                     "FftPlan::forward_planar: size mismatch");
  FTIO_CONTRACT(alias_full_or_disjoint(in_re.data(), out_re.data(), n_) &&
                    alias_full_or_disjoint(in_im.data(), out_im.data(), n_),
                "planar lanes must fully alias or not overlap");
  if (n_ == 1) {
    out_re[0] = in_re[0];
    out_im[0] = in_im[0];
    return;
  }
  auto& ws = workspace();
  if (pow2_) {
    const double* sr = in_re.data();
    const double* si = in_im.data();
    if (sr == out_re.data() || si == out_im.data()) {
      // In-place call: the permuted gather cannot run in place, so stage
      // the input through scratch (full aliasing only; partial overlap
      // is undefined).
      ws.re2.assign(in_re.begin(), in_re.end());
      ws.im2.assign(in_im.begin(), in_im.end());
      sr = ws.re2.data();
      si = ws.im2.data();
    }
    detail::bitrev_permute_planar(bitrev_.data(), n_, sr, si,
                                  out_re.data(), out_im.data());
    split_passes(out_re.data(), out_im.data(), /*invert=*/false);
    return;
  }
  // Non power-of-two: Bluestein runs on the interleaved scratch edge.
  ws.packed.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    ws.packed[i] = Complex(in_re[i], in_im[i]);
  }
  ws.half.resize(n_);
  bluestein_forward(ws.packed, ws.half);
  for (std::size_t i = 0; i < n_; ++i) {
    out_re[i] = ws.half[i].real();
    out_im[i] = ws.half[i].imag();
  }
}

void FftPlan::inverse_planar(std::span<const double> in_re,
                             std::span<const double> in_im,
                             std::span<double> out_re,
                             std::span<double> out_im) const {
  ftio::util::expect(in_re.size() == n_ && in_im.size() == n_ &&
                         out_re.size() == n_ && out_im.size() == n_,
                     "FftPlan::inverse_planar: size mismatch");
  FTIO_CONTRACT(alias_full_or_disjoint(in_re.data(), out_re.data(), n_) &&
                    alias_full_or_disjoint(in_im.data(), out_im.data(), n_),
                "planar lanes must fully alias or not overlap");
  if (n_ == 1) {
    out_re[0] = in_re[0];
    out_im[0] = in_im[0];
    return;
  }
  auto& ws = workspace();
  const double scale = 1.0 / static_cast<double>(n_);
  if (pow2_) {
    const double* sr = in_re.data();
    const double* si = in_im.data();
    if (sr == out_re.data() || si == out_im.data()) {
      ws.re2.assign(in_re.begin(), in_re.end());
      ws.im2.assign(in_im.begin(), in_im.end());
      sr = ws.re2.data();
      si = ws.im2.data();
    }
    detail::bitrev_permute_planar(bitrev_.data(), n_, sr, si,
                                  out_re.data(), out_im.data());
    split_passes(out_re.data(), out_im.data(), /*invert=*/true);
    for (std::size_t i = 0; i < n_; ++i) {
      out_re[i] *= scale;
      out_im[i] *= scale;
    }
    return;
  }
  ws.packed.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    ws.packed[i] = Complex(in_re[i], in_im[i]);
  }
  ws.half.resize(n_);
  inverse(ws.packed, ws.half);  // conjugation trick + 1/N inside
  for (std::size_t i = 0; i < n_; ++i) {
    out_re[i] = ws.half[i].real();
    out_im[i] = ws.half[i].imag();
  }
}

void FftPlan::forward_real(std::span<const double> in,
                           std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_,
                     "FftPlan::forward_real: size mismatch");
  if (n_ == 1) {
    out[0] = Complex(in[0], 0.0);
    return;
  }
  if (n_ % 2 != 0) {
    // Odd N: complexify and run the full transform directly.
    auto& packed = workspace().packed;
    packed.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) packed[i] = Complex(in[i], 0.0);
    forward(packed, out);
    return;
  }
  // Even N: packed half transform, then mirror the conjugate-symmetric
  // upper half for legacy full-spectrum callers.
  const std::size_t h = n_ / 2;
  forward_real_half(in, out.first(h + 1));
  for (std::size_t k = 1; k < h; ++k) out[n_ - k] = std::conj(out[k]);
}

void FftPlan::forward_real_half(std::span<const double> in,
                                std::span<Complex> out) const {
  ftio::util::expect(in.size() == n_ && out.size() == n_ / 2 + 1,
                     "FftPlan::forward_real_half: size mismatch");
  // Thin adapter: run the planar path into the half-spectrum scratch
  // lanes and interleave at the edge.
  auto& ws = workspace();
  const std::size_t bins = n_ / 2 + 1;
  ws.hre.resize(bins);
  ws.him.resize(bins);
  forward_real_half_planar(in, ws.hre, ws.him);
  for (std::size_t k = 0; k < bins; ++k) {
    out[k] = Complex(ws.hre[k], ws.him[k]);
  }
}

void FftPlan::forward_real_half_planar(std::span<const double> in,
                                       std::span<double> out_re,
                                       std::span<double> out_im) const {
  ftio::util::expect(in.size() == n_ && out_re.size() == n_ / 2 + 1 &&
                         out_im.size() == n_ / 2 + 1,
                     "FftPlan::forward_real_half_planar: size mismatch");
  if (n_ == 1) {
    out_re[0] = in[0];
    out_im[0] = 0.0;
    return;
  }
  auto& ws = workspace();
  if (n_ % 2 != 0) {
    // Odd N: full complex transform into scratch, keep the half.
    ws.packed.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) ws.packed[i] = Complex(in[i], 0.0);
    ws.half.resize(n_);
    forward(ws.packed, ws.half);
    for (std::size_t k = 0; k <= n_ / 2; ++k) {
      out_re[k] = ws.half[k].real();
      out_im[k] = ws.half[k].imag();
    }
    return;
  }

  // Pack x[2j] + i*x[2j+1] into an N/2-point signal, transform it, then
  // untangle the single-sided even/odd spectra with the precomputed
  // unpack twiddles. The mirror bins X[N-k] are never formed. `zre`/`zim`
  // read bin k of the packed transform from whichever buffer the branch
  // below produced it in.
  ensure_real_tables();
  const std::size_t h = n_ / 2;
  const auto unpack = [&](auto&& zre, auto&& zim) {
    const double* __restrict twr = rtw_re_.data();
    const double* __restrict twi = rtw_im_.data();
    // DC and Nyquist both read bin 0 of the packed transform (k and h-k
    // wrap to 0); peeling them keeps the interior loop free of the
    // index-wrapping modulo — two hardware divides per bin that used to
    // dominate the whole unpack at large N.
    const double z0r = zre(std::size_t{0}), z0i = zim(std::size_t{0});
    out_re[0] = z0r + z0i;
    out_im[0] = 0.0;
    out_re[h] = z0r - z0i;
    out_im[h] = 0.0;
    for (std::size_t k = 1; k < h; ++k) {
      const double zkr = zre(k), zki = zim(k);
      const double zmr = zre(h - k), zmi = -zim(h - k);
      const double er = 0.5 * (zkr + zmr);
      const double ei = 0.5 * (zki + zmi);
      // odd = -i/2 * (z_k - conj(z_{h-k}))
      const double odr = 0.5 * (zki - zmi);
      const double odi = -0.5 * (zkr - zmr);
      out_re[k] = er + twr[k] * odr - twi[k] * odi;
      out_im[k] = ei + twr[k] * odi + twi[k] * odr;
    }
  };
  if (half_->pow2_) {
    // Fast path: pack the real pairs straight into the planar split
    // buffers, permuting as we go — no interleaved complex copy at all.
    ws.re.resize(h);
    ws.im.resize(h);
    double* re = ws.re.data();
    double* im = ws.im.data();
    if (h == 1) {
      re[0] = in[0];
      im[0] = in[1];
    } else {
      detail::bitrev_permute_pairs(half_->bitrev_.data(), h, in.data(), re,
                                   im);
      half_->split_passes(re, im, /*invert=*/false);
    }
    unpack([&](std::size_t k) { return re[k]; },
           [&](std::size_t k) { return im[k]; });
    return;
  }

  // Even N with a non power-of-two half: the half transform runs through
  // Bluestein on an interleaved buffer.
  ws.packed.resize(h);
  ws.half.resize(h);
  for (std::size_t j = 0; j < h; ++j) {
    ws.packed[j] = Complex(in[2 * j], in[2 * j + 1]);
  }
  half_->forward(ws.packed, ws.half);
  unpack([&](std::size_t k) { return ws.half[k].real(); },
         [&](std::size_t k) { return ws.half[k].imag(); });
}

void FftPlan::inverse_real_half(std::span<const Complex> in,
                                std::span<double> out) const {
  ftio::util::expect(in.size() == n_ / 2 + 1 && out.size() == n_,
                     "FftPlan::inverse_real_half: size mismatch");
  // Thin adapter: deinterleave the half spectrum into the scratch lanes
  // and run the planar path.
  auto& ws = workspace();
  const std::size_t bins = n_ / 2 + 1;
  ws.hre.resize(bins);
  ws.him.resize(bins);
  for (std::size_t k = 0; k < bins; ++k) {
    ws.hre[k] = in[k].real();
    ws.him[k] = in[k].imag();
  }
  inverse_real_half_planar(ws.hre, ws.him, out);
}

void FftPlan::inverse_real_half_planar(std::span<const double> in_re,
                                       std::span<const double> in_im,
                                       std::span<double> out) const {
  ftio::util::expect(in_re.size() == n_ / 2 + 1 &&
                         in_im.size() == n_ / 2 + 1 && out.size() == n_,
                     "FftPlan::inverse_real_half_planar: size mismatch");
  if (n_ == 1) {
    out[0] = in_re[0];
    return;
  }
  auto& ws = workspace();
  if (n_ % 2 != 0) {
    // Odd N: rebuild the full conjugate-symmetric spectrum and run the
    // complex inverse; the imaginary parts of the result are rounding
    // noise and dropped.
    const std::size_t h = n_ / 2;
    ws.packed.resize(n_);
    ws.packed[0] = Complex(in_re[0], 0.0);
    for (std::size_t k = 1; k <= h; ++k) {
      ws.packed[k] = Complex(in_re[k], in_im[k]);
      ws.packed[n_ - k] = Complex(in_re[k], -in_im[k]);
    }
    ws.half.resize(n_);
    inverse(ws.packed, ws.half);
    for (std::size_t i = 0; i < n_; ++i) out[i] = ws.half[i].real();
    return;
  }

  // Even N: fold the half spectrum back into the N/2-point packed signal
  // Z_k = E_k + i*O_k (E/O the even/odd-sample spectra, O recovered with
  // the conjugate unpack twiddle), inverse-transform it, and deinterleave
  // z_j = x[2j] + i*x[2j+1]. DC and Nyquist imaginary parts are forced to
  // zero — a real signal cannot produce them.
  ensure_real_tables();
  const std::size_t h = n_ / 2;
  struct Z {
    double r, i;
  };
  // Bin 0 of the packed signal folds DC with Nyquist (both forced real);
  // peeling it keeps the interior fold branch-free.
  const Z z0{0.5 * (in_re[0] + in_re[h]), 0.5 * (in_re[0] - in_re[h])};
  const auto z_at = [&](std::size_t k) -> Z {  // k in [1, h)
    const double ar = in_re[k];
    const double ai = in_im[k];
    const double br = in_re[h - k];
    const double bi = -in_im[h - k];
    const double er = 0.5 * (ar + br);
    const double ei = 0.5 * (ai + bi);
    const double dr = 0.5 * (ar - br);
    const double di = 0.5 * (ai - bi);
    // odd = conj(tw_k) * d;  Z_k = E_k + i * O_k
    const double odr = rtw_re_[k] * dr + rtw_im_[k] * di;
    const double odi = rtw_re_[k] * di - rtw_im_[k] * dr;
    return {er - odi, ei + odr};
  };
  if (half_->pow2_) {
    ws.re.resize(h);
    ws.im.resize(h);
    double* re = ws.re.data();
    double* im = ws.im.data();
    if (h == 1) {
      re[0] = z0.r;
      im[0] = z0.i;
    } else if (h >= detail::kBlockedBitrevMinN) {
      // Large N: materialise the fold in linear order, then run the
      // cache-blocked permutation — two streaming passes instead of one
      // scattered one. Same values into the same slots as the direct
      // scatter below, so the threshold never changes results.
      ws.re2.resize(h);
      ws.im2.resize(h);
      ws.re2[0] = z0.r;
      ws.im2[0] = z0.i;
      for (std::size_t k = 1; k < h; ++k) {
        const Z z = z_at(k);
        ws.re2[k] = z.r;
        ws.im2[k] = z.i;
      }
      detail::bitrev_permute_planar(half_->bitrev_.data(), h,
                                    ws.re2.data(), ws.im2.data(), re, im);
      half_->split_passes(re, im, /*invert=*/true);
    } else {
      // Scatter into bit-reversed order so the split passes run directly
      // (bitrev[0] == 0: z0 lands in slot 0).
      const std::uint32_t* bp = half_->bitrev_.data();
      re[0] = z0.r;
      im[0] = z0.i;
      for (std::size_t k = 1; k < h; ++k) {
        const Z z = z_at(k);
        const std::size_t d = bp[k];
        re[d] = z.r;
        im[d] = z.i;
      }
      half_->split_passes(re, im, /*invert=*/true);
    }
    const double scale = 1.0 / static_cast<double>(h);
    for (std::size_t j = 0; j < h; ++j) {
      out[2 * j] = re[j] * scale;
      out[2 * j + 1] = im[j] * scale;
    }
    return;
  }

  ws.packed.resize(h);
  ws.packed[0] = Complex(z0.r, z0.i);
  for (std::size_t k = 1; k < h; ++k) {
    const Z z = z_at(k);
    ws.packed[k] = Complex(z.r, z.i);
  }
  ws.half.resize(h);
  half_->inverse(ws.packed, ws.half);  // includes the 1/(N/2) scaling
  for (std::size_t j = 0; j < h; ++j) {
    out[2 * j] = ws.half[j].real();
    out[2 * j + 1] = ws.half[j].imag();
  }
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

struct PlanCache::Impl {
  mutable ftio::util::Mutex mutex;
  std::size_t capacity FTIO_GUARDED_BY(mutex);
  // MRU-ordered list of (size, plan); map values point into the list.
  std::list<std::pair<std::size_t, std::shared_ptr<const FftPlan>>> lru
      FTIO_GUARDED_BY(mutex);
  std::unordered_map<std::size_t,
                     std::list<std::pair<std::size_t,
                                         std::shared_ptr<const FftPlan>>>::
                         iterator>
      index FTIO_GUARDED_BY(mutex);
  // In-flight constructions, keyed by size: late arrivals block on the
  // winner's future instead of duplicating a potentially multi-ms build.
  // The Build objects themselves are unguarded — the winning thread owns
  // the promise, waiters only touch their shared_future copy.
  struct Build {
    std::promise<std::shared_ptr<const FftPlan>> promise;
    std::shared_future<std::shared_ptr<const FftPlan>> future;
  };
  std::unordered_map<std::size_t, std::shared_ptr<Build>> building
      FTIO_GUARDED_BY(mutex);
  std::uint64_t hits FTIO_GUARDED_BY(mutex) = 0;
  std::uint64_t misses FTIO_GUARDED_BY(mutex) = 0;
  std::uint64_t miss_waits FTIO_GUARDED_BY(mutex) = 0;
  std::uint64_t evictions FTIO_GUARDED_BY(mutex) = 0;

  void evict_to_capacity_locked() FTIO_REQUIRES(mutex) {
    while (lru.size() > capacity) {
      index.erase(lru.back().first);
      lru.pop_back();
      ++evictions;
    }
  }
};

PlanCache::PlanCache(std::size_t capacity) : impl_(new Impl) {
  impl_->capacity = capacity == 0 ? 1 : capacity;
}

PlanCache::~PlanCache() = default;

std::shared_ptr<const FftPlan> PlanCache::get(std::size_t n) {
  std::shared_ptr<Impl::Build> build;
  std::shared_future<std::shared_ptr<const FftPlan>> wait_on;
  {
    const ftio::util::LockGuard lock(impl_->mutex);
    auto it = impl_->index.find(n);
    if (it != impl_->index.end()) {
      impl_->lru.splice(impl_->lru.begin(), impl_->lru, it->second);
      ++impl_->hits;
      return it->second->second;
    }
    auto in_flight = impl_->building.find(n);
    if (in_flight != impl_->building.end()) {
      // Another thread is constructing this size right now: block on its
      // future instead of building a duplicate. The wait happens outside
      // this scope — the builder needs the mutex to publish its result.
      ++impl_->miss_waits;
      wait_on = in_flight->second->future;
    } else {
      build = std::make_shared<Impl::Build>();
      build->future = build->promise.get_future().share();
      impl_->building.emplace(n, build);
    }
  }
  if (wait_on.valid()) return wait_on.get();
  // Construct outside the lock: plan construction can recurse into the
  // cache (Bluestein's power-of-two sub-plan, the real-path half plan) and
  // may take milliseconds for large N. The `building` slot guarantees this
  // thread is the only one constructing size n.
  std::shared_ptr<const FftPlan> plan;
  try {
    plan = std::make_shared<const FftPlan>(n);
  } catch (...) {
    {
      const ftio::util::LockGuard lock(impl_->mutex);
      impl_->building.erase(n);
    }
    build->promise.set_exception(std::current_exception());
    throw;
  }
  {
    const ftio::util::LockGuard lock(impl_->mutex);
    ++impl_->misses;
    impl_->lru.emplace_front(n, plan);
    impl_->index[n] = impl_->lru.begin();
    impl_->building.erase(n);
    impl_->evict_to_capacity_locked();
  }
  build->promise.set_value(plan);
  return plan;
}

PlanCache::Stats PlanCache::stats() const {
  const ftio::util::LockGuard lock(impl_->mutex);
  Stats s;
  s.hits = impl_->hits;
  s.misses = impl_->misses;
  s.miss_waits = impl_->miss_waits;
  s.evictions = impl_->evictions;
  s.size = impl_->lru.size();
  return s;
}

std::size_t PlanCache::capacity() const {
  const ftio::util::LockGuard lock(impl_->mutex);
  return impl_->capacity;
}

void PlanCache::set_capacity(std::size_t capacity) {
  const ftio::util::LockGuard lock(impl_->mutex);
  impl_->capacity = capacity == 0 ? 1 : capacity;
  impl_->evict_to_capacity_locked();
}

void PlanCache::clear() {
  const ftio::util::LockGuard lock(impl_->mutex);
  impl_->lru.clear();
  impl_->index.clear();
  impl_->hits = 0;
  impl_->misses = 0;
  impl_->miss_waits = 0;
  impl_->evictions = 0;
}

PlanCache& plan_cache() {
  static PlanCache cache;
  return cache;
}

std::shared_ptr<const FftPlan> get_plan(std::size_t n) {
  return plan_cache().get(n);
}

// ---------------------------------------------------------------------------
// Allocation-free entry points
// ---------------------------------------------------------------------------

void fft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "fft_into: empty input");
  get_plan(in.size())->forward(in, out);
}

void ifft_into(std::span<const Complex> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "ifft_into: empty input");
  get_plan(in.size())->inverse(in, out);
}

void rfft_into(std::span<const double> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "rfft_into: empty input");
  get_plan(in.size())->forward_real(in, out);
}

void fft_planar_into(std::span<const double> in_re,
                     std::span<const double> in_im,
                     std::span<double> out_re, std::span<double> out_im) {
  ftio::util::expect(!in_re.empty(), "fft_planar_into: empty input");
  get_plan(in_re.size())->forward_planar(in_re, in_im, out_re, out_im);
}

void ifft_planar_into(std::span<const double> in_re,
                      std::span<const double> in_im,
                      std::span<double> out_re, std::span<double> out_im) {
  ftio::util::expect(!in_re.empty(), "ifft_planar_into: empty input");
  get_plan(in_re.size())->inverse_planar(in_re, in_im, out_re, out_im);
}

void rfft_half_into(std::span<const double> in, std::span<Complex> out) {
  ftio::util::expect(!in.empty(), "rfft_half_into: empty input");
  get_plan(in.size())->forward_real_half(in, out);
}

void rfft_half_planar_into(std::span<const double> in,
                           std::span<double> out_re,
                           std::span<double> out_im) {
  ftio::util::expect(!in.empty(), "rfft_half_planar_into: empty input");
  get_plan(in.size())->forward_real_half_planar(in, out_re, out_im);
}

void irfft_half_into(std::span<const Complex> in, std::span<double> out) {
  ftio::util::expect(!out.empty(), "irfft_half_into: empty output");
  get_plan(out.size())->inverse_real_half(in, out);
}

void irfft_half_planar_into(std::span<const double> in_re,
                            std::span<const double> in_im,
                            std::span<double> out) {
  ftio::util::expect(!out.empty(), "irfft_half_planar_into: empty output");
  get_plan(out.size())->inverse_real_half_planar(in_re, in_im, out);
}

// ---------------------------------------------------------------------------
// detail: reference kernels (scalar radix-2, PR 3 fused radix-4)
// ---------------------------------------------------------------------------

namespace detail {

Radix2Tables::Radix2Tables(std::size_t n) {
  ftio::util::expect(is_power_of_two(n), "Radix2Tables: n must be 2^k");
  bitrev = build_bitrev(n);
  twiddle.resize(n / 2);
  for (std::size_t j = 0; j < n / 2; ++j) twiddle[j] = unit_root(j, n);
}

namespace {

template <bool Invert>
void radix2_core(std::span<Complex> a,
                 const std::vector<std::uint32_t>& bitrev,
                 const std::vector<Complex>& twiddle) {
  const std::size_t n = a.size();
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t j = bitrev[i];
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t i = 0; i + 1 < n; i += 2) {
    const Complex u = a[i];
    const Complex v = a[i + 1];
    a[i] = u + v;
    a[i + 1] = u - v;
  }
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::size_t stride = n / len;  // twiddle table stride
    for (std::size_t i = 0; i < n; i += len) {
      for (std::size_t j = 0; j < len / 2; ++j) {
        Complex w = twiddle[j * stride];
        if constexpr (Invert) w = std::conj(w);
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
      }
    }
  }
}

}  // namespace

void radix2_scalar(std::span<Complex> a, const Radix2Tables& tables,
                   bool invert) {
  ftio::util::expect(a.size() == tables.bitrev.size() || a.size() <= 1,
                     "radix2_scalar: size mismatch");
  if (a.size() < 2) return;
  if (invert) {
    radix2_core<true>(a, tables.bitrev, tables.twiddle);
  } else {
    radix2_core<false>(a, tables.bitrev, tables.twiddle);
  }
}

Radix4Tables::Radix4Tables(std::size_t size) : n(size) {
  ftio::util::expect(is_power_of_two(n) && n >= 2,
                     "Radix4Tables: n must be 2^k >= 2");
  bitrev = build_bitrev(n);
  // Butterfly schedule: stages of length 2, 4, ..., N fused in pairs
  // into radix-4 passes. An odd stage count leaves the trivial
  // twiddle-free length-2 stage as a radix-2 lead; an even count starts
  // with the equally twiddle-free fused (2,4) pass.
  unsigned k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  std::size_t stage = 1;  // next unfused stage s (length 2^s)
  if (k % 2 == 1) {
    lead_radix2 = true;
    stage = 2;
  } else {
    lead_radix4 = true;
    stage = 3;
  }
  for (; stage + 1 <= k; stage += 2) {
    const std::size_t len = std::size_t{1} << stage;  // fuse (len, 2*len)
    Pass pass;
    pass.half = len / 2;
    pass.w1re.resize(pass.half);
    pass.w1im.resize(pass.half);
    pass.w2re.resize(pass.half);
    pass.w2im.resize(pass.half);
    for (std::size_t j = 0; j < pass.half; ++j) {
      const Complex w1 = unit_root(j, len);
      const Complex w2 = unit_root(j, 2 * len);
      pass.w1re[j] = w1.real();
      pass.w1im[j] = w1.imag();
      pass.w2re[j] = w2.real();
      pass.w2im[j] = w2.imag();
    }
    passes.push_back(std::move(pass));
  }
}

namespace {

template <bool Inv>
void radix4_core(double* re, double* im, const Radix4Tables& t) {
  const std::size_t n = t.n;
  if (t.lead_radix2) {
    // Stage of length 2: every twiddle is 1.
    for (std::size_t i = 0; i + 1 < n; i += 2) {
      const double ar = re[i], ai = im[i];
      const double br = re[i + 1], bi = im[i + 1];
      re[i] = ar + br;
      im[i] = ai + bi;
      re[i + 1] = ar - br;
      im[i + 1] = ai - bi;
    }
  } else if (t.lead_radix4) {
    // Fused stages (2, 4): plain 4-point DFTs, no twiddle loads.
    for (std::size_t i = 0; i + 3 < n; i += 4) {
      const double ar = re[i], ai = im[i];
      const double br = re[i + 1], bi = im[i + 1];
      const double cr = re[i + 2], ci = im[i + 2];
      const double dr = re[i + 3], di = im[i + 3];
      const double t0r = ar + br, t0i = ai + bi;
      const double t1r = ar - br, t1i = ai - bi;
      const double t2r = cr + dr, t2i = ci + di;
      const double t3r = cr - dr, t3i = ci - di;
      re[i] = t0r + t2r;
      im[i] = t0i + t2i;
      re[i + 2] = t0r - t2r;
      im[i + 2] = t0i - t2i;
      if constexpr (Inv) {
        re[i + 1] = t1r - t3i;
        im[i + 1] = t1i + t3r;
        re[i + 3] = t1r + t3i;
        im[i + 3] = t1i - t3r;
      } else {
        re[i + 1] = t1r + t3i;
        im[i + 1] = t1i - t3r;
        re[i + 3] = t1r - t3i;
        im[i + 3] = t1i + t3r;
      }
    }
  }
  // Generic fused passes: stage pair (L, 2L) as one radix-4 sweep over
  // blocks of 2L. Within a block the four quarters are contiguous, so
  // the j loop below is pure stride-1 double arithmetic over disjoint
  // lanes.
  for (const auto& pass : t.passes) {
    const std::size_t half = pass.half;  // L/2
    const std::size_t block = 4 * half;  // 2L
    const double* __restrict w1r = pass.w1re.data();
    const double* __restrict w1i = pass.w1im.data();
    const double* __restrict w2r = pass.w2re.data();
    const double* __restrict w2i = pass.w2im.data();
    for (std::size_t i = 0; i < n; i += block) {
      double* __restrict re0 = re + i;
      double* __restrict im0 = im + i;
      double* __restrict re1 = re0 + half;
      double* __restrict im1 = im0 + half;
      double* __restrict re2 = re0 + 2 * half;
      double* __restrict im2 = im0 + 2 * half;
      double* __restrict re3 = re0 + 3 * half;
      double* __restrict im3 = im0 + 3 * half;
      for (std::size_t j = 0; j < half; ++j) {
        const double w1rj = w1r[j];
        const double w1ij = Inv ? -w1i[j] : w1i[j];
        const double w2rj = w2r[j];
        const double w2ij = Inv ? -w2i[j] : w2i[j];
        // Stage L: butterflies (0,1) and (2,3) with twiddle w1.
        const double br = w1rj * re1[j] - w1ij * im1[j];
        const double bi = w1rj * im1[j] + w1ij * re1[j];
        const double dr = w1rj * re3[j] - w1ij * im3[j];
        const double di = w1rj * im3[j] + w1ij * re3[j];
        const double t0r = re0[j] + br, t0i = im0[j] + bi;
        const double t1r = re0[j] - br, t1i = im0[j] - bi;
        const double t2r = re2[j] + dr, t2i = im2[j] + di;
        const double t3r = re2[j] - dr, t3i = im2[j] - di;
        // Stage 2L: butterflies (0,2) with w2 and (1,3) with -i*w2
        // (+i*w2 for the inverse) — the -i is folded into the output
        // shuffle instead of a third twiddle table.
        const double u2r = w2rj * t2r - w2ij * t2i;
        const double u2i = w2rj * t2i + w2ij * t2r;
        const double u3r = w2rj * t3r - w2ij * t3i;
        const double u3i = w2rj * t3i + w2ij * t3r;
        re0[j] = t0r + u2r;
        im0[j] = t0i + u2i;
        re2[j] = t0r - u2r;
        im2[j] = t0i - u2i;
        if constexpr (Inv) {
          re1[j] = t1r - u3i;
          im1[j] = t1i + u3r;
          re3[j] = t1r + u3i;
          im3[j] = t1i - u3r;
        } else {
          re1[j] = t1r + u3i;
          im1[j] = t1i - u3r;
          re3[j] = t1r - u3i;
          im3[j] = t1i + u3r;
        }
      }
    }
  }
}

}  // namespace

void radix4_planar(double* re, double* im, const Radix4Tables& tables,
                   bool invert) {
  if (invert) {
    radix4_core<true>(re, im, tables);
  } else {
    radix4_core<false>(re, im, tables);
  }
}

}  // namespace detail

}  // namespace ftio::signal
