#include "signal/wavelet.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "signal/fft.hpp"
#include "signal/plan.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

std::size_t CwtResult::dominant_row() const {
  std::size_t best = 0;
  double best_energy = -1.0;
  for (std::size_t f = 0; f < power.size(); ++f) {
    double energy = 0.0;
    for (double p : power[f]) energy += p;
    if (energy > best_energy) {
      best_energy = energy;
      best = f;
    }
  }
  return best;
}

std::vector<double> CwtResult::dominant_frequency_over_time() const {
  std::vector<double> out(time_steps(), 0.0);
  for (std::size_t n = 0; n < out.size(); ++n) {
    std::size_t best = 0;
    for (std::size_t f = 1; f < power.size(); ++f) {
      if (power[f][n] > power[best][n]) best = f;
    }
    out[n] = frequencies.empty() ? 0.0 : frequencies[best];
  }
  return out;
}

CwtResult morlet_cwt(std::span<const double> samples, double fs,
                     std::span<const double> frequencies, double omega0,
                     unsigned threads) {
  ftio::util::expect(!samples.empty(), "morlet_cwt: empty signal");
  ftio::util::expect(fs > 0.0, "morlet_cwt: fs must be positive");
  ftio::util::expect(!frequencies.empty(), "morlet_cwt: no frequencies");
  ftio::util::expect(omega0 > 0.0, "morlet_cwt: omega0 must be positive");
  for (double f : frequencies) {
    ftio::util::expect(f > 0.0, "morlet_cwt: frequencies must be positive");
  }

  const std::size_t n = samples.size();
  const std::size_t padded = next_power_of_two(2 * n);

  // One shared plan serves the forward transform and every per-scale
  // inverse; the handle keeps the tables alive across calls even if the
  // cache evicts them.
  const auto plan = get_plan(padded);

  // Mean-removed, zero-padded signal spectrum (computed once, through the
  // plan's packed real fast path, straight into planar re/im lanes). The
  // analytic Morlet window below only ever reads the positive-frequency
  // bins k in [1, padded/2], so the single-sided half spectrum is all
  // that is needed — the mirrored upper half is never computed or stored,
  // and no interleaved std::complex buffer exists on the row path.
  const double mean = ftio::util::mean(samples);
  std::vector<double> x(padded, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = samples[i] - mean;
  std::vector<double> xh_re(padded / 2 + 1);
  std::vector<double> xh_im(padded / 2 + 1);
  plan->forward_real_half_planar(x, xh_re, xh_im);

  CwtResult result;
  result.sampling_frequency = fs;
  result.frequencies.assign(frequencies.begin(), frequencies.end());
  result.power.resize(frequencies.size());

  // Angular frequency grid of the padded FFT — positive frequencies
  // only, matching the half spectrum: the analytic wavelet never reads a
  // bin above padded/2.
  std::vector<double> omega(padded / 2 + 1);
  for (std::size_t k = 0; k < omega.size(); ++k) {
    omega[k] = 2.0 * std::numbers::pi * static_cast<double>(k) * fs /
               static_cast<double>(padded);
  }

  // Rows are independent, and every row runs the same padded-size inverse
  // transform: fan cache-resident batch tiles (not single rows) across
  // workers, and run each tile's inverses through one stage-major batched
  // plan execution — the twiddle streams load once per stage for the
  // whole tile instead of once per scale. Tile boundaries depend only on
  // the row index and batch rows are bit-identical to per-row calls, so
  // the result does not depend on the thread count or the tile split.
  // The product/coefficient buffers are per-thread scratch reused across
  // tiles (and across calls), so the hot loop does no allocation.
  const std::size_t tile_rows =
      std::max<std::size_t>(std::size_t{1}, plan->batch_tile_rows(false));
  const std::size_t tiles =
      (frequencies.size() + tile_rows - 1) / tile_rows;
  ftio::util::parallel_for(
      tiles,
      [&](std::size_t t) {
        const std::size_t row0 = t * tile_rows;
        const std::size_t rows =
            std::min(tile_rows, frequencies.size() - row0);

        // Planar per-thread scratch: the windowed-product rows and the
        // coefficient rows feed the plan's batched planar inverse
        // directly (row stride = padded).
        thread_local std::vector<double> prod_re;
        thread_local std::vector<double> prod_im;
        thread_local std::vector<double> coef_re;
        thread_local std::vector<double> coef_im;
        prod_re.assign(rows * padded, 0.0);
        prod_im.assign(rows * padded, 0.0);
        coef_re.resize(rows * padded);
        coef_im.resize(rows * padded);

        for (std::size_t r = 0; r < rows; ++r) {
          const std::size_t fi = row0 + r;
          // Morlet: psi_hat(s*w) = pi^{-1/4} exp(-(s*w - omega0)^2 / 2),
          // analytic (zero for negative frequencies). Scale from pseudo-
          // frequency: f = omega0 / (2*pi*s) => s = omega0 / (2*pi*f).
          const double scale =
              omega0 / (2.0 * std::numbers::pi * frequencies[fi]);
          // L2 normalisation (Torrence & Compo 1998, Eq. 6): the factor
          // sqrt(2*pi*scale*fs) gives every daughter wavelet unit
          // discrete energy, sum_k |psi_hat(s*w_k)|^2 = padded.
          const double norm =
              std::pow(std::numbers::pi, -0.25) *
              std::sqrt(2.0 * std::numbers::pi * scale * fs);

          // The analytic wavelet lives on the positive-frequency bins
          // k in [1, padded/2], and the Gaussian underflows to exactly 0
          // once |scale*w - omega0| exceeds ~39 (exp(-745) is the
          // smallest positive double), so only the bins inside that band
          // need the exp at all — for low pseudo-frequencies that is a
          // small fraction of the spectrum.
          constexpr double kGaussianCut = 40.0;
          const double bins_per_omega =
              static_cast<double>(padded) / (2.0 * std::numbers::pi * fs);
          const std::size_t half = padded / 2;
          // Clamp in double before narrowing: extreme pseudo-frequencies
          // make these bin counts overflow size_t otherwise.
          const double half_bins = static_cast<double>(half);
          std::size_t k_lo = 1;
          if (omega0 > kGaussianCut) {
            const double lo_bins =
                std::ceil((omega0 - kGaussianCut) / scale * bins_per_omega);
            k_lo = lo_bins <= 1.0
                       ? 1
                       : static_cast<std::size_t>(
                             std::min(lo_bins, half_bins + 1.0));
          }
          const double hi_bins =
              std::floor((omega0 + kGaussianCut) / scale * bins_per_omega);
          const std::size_t k_hi =
              hi_bins <= 0.0 ? 0
                             : static_cast<std::size_t>(
                                   std::min(hi_bins, half_bins));
          double* pr = prod_re.data() + r * padded;
          double* pi = prod_im.data() + r * padded;
          for (std::size_t k = k_lo; k <= k_hi; ++k) {
            const double arg = scale * omega[k] - omega0;
            const double window = norm * std::exp(-0.5 * arg * arg);
            pr[k] = xh_re[k] * window;
            pi[k] = xh_im[k] * window;
          }
        }

        plan->inverse_planar_batch(rows, padded, prod_re, prod_im, coef_re,
                                   coef_im);

        for (std::size_t r = 0; r < rows; ++r) {
          const std::size_t fi = row0 + r;
          const double scale =
              omega0 / (2.0 * std::numbers::pi * frequencies[fi]);
          // Scalogram power, rectified by 1/scale (Liu et al. 2007):
          // under the L2 normalisation alone |W|^2 of a pure tone grows
          // with the matched scale, biasing every row comparison toward
          // low frequencies; dividing by the scale makes equal-amplitude
          // tones produce equal power whichever row they match.
          auto& row = result.power[fi];
          row.resize(n);
          const double rectify = 1.0 / scale;
          const double* cr = coef_re.data() + r * padded;
          const double* ci = coef_im.data() + r * padded;
          for (std::size_t i = 0; i < n; ++i) {
            row[i] = (cr[i] * cr[i] + ci[i] * ci[i]) * rectify;
          }
        }
      },
      threads);
  return result;
}

std::vector<double> log_spaced_frequencies(double lo, double hi,
                                           std::size_t count) {
  ftio::util::expect(lo > 0.0 && hi > lo, "log_spaced_frequencies: bad range");
  ftio::util::expect(count >= 2, "log_spaced_frequencies: need >= 2 points");
  std::vector<double> out(count);
  const double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo * std::exp(step * static_cast<double>(i));
  }
  return out;
}

std::optional<std::size_t> strongest_change_point(const CwtResult& cwt,
                                                  std::size_t window) {
  const std::size_t n = cwt.time_steps();
  if (n < 2 * window + 1 || window == 0 || cwt.power.empty()) {
    return std::nullopt;
  }
  const auto dominant = cwt.dominant_frequency_over_time();

  // Compare median dominant frequency left vs right of each centre.
  auto median_of = [&](std::size_t lo, std::size_t hi) {
    std::vector<double> values(dominant.begin() + static_cast<std::ptrdiff_t>(lo),
                               dominant.begin() + static_cast<std::ptrdiff_t>(hi));
    return ftio::util::median(values);
  };

  std::size_t best = 0;
  double best_shift = 0.0;
  for (std::size_t c = window; c + window < n; ++c) {
    const double left = median_of(c - window, c);
    const double right = median_of(c, c + window);
    if (left <= 0.0 || right <= 0.0) continue;
    const double shift = std::abs(std::log(right / left));
    if (shift > best_shift) {
      best_shift = shift;
      best = c;
    }
  }
  // Only report a genuine shift (> ~15% frequency ratio).
  if (best_shift > 0.14) return best;
  return std::nullopt;
}

}  // namespace ftio::signal
