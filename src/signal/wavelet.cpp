#include "signal/wavelet.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "signal/fft.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

std::size_t CwtResult::dominant_row() const {
  std::size_t best = 0;
  double best_energy = -1.0;
  for (std::size_t f = 0; f < power.size(); ++f) {
    double energy = 0.0;
    for (double p : power[f]) energy += p;
    if (energy > best_energy) {
      best_energy = energy;
      best = f;
    }
  }
  return best;
}

std::vector<double> CwtResult::dominant_frequency_over_time() const {
  std::vector<double> out(time_steps(), 0.0);
  for (std::size_t n = 0; n < out.size(); ++n) {
    std::size_t best = 0;
    for (std::size_t f = 1; f < power.size(); ++f) {
      if (power[f][n] > power[best][n]) best = f;
    }
    out[n] = frequencies.empty() ? 0.0 : frequencies[best];
  }
  return out;
}

CwtResult morlet_cwt(std::span<const double> samples, double fs,
                     std::span<const double> frequencies, double omega0) {
  ftio::util::expect(!samples.empty(), "morlet_cwt: empty signal");
  ftio::util::expect(fs > 0.0, "morlet_cwt: fs must be positive");
  ftio::util::expect(!frequencies.empty(), "morlet_cwt: no frequencies");
  ftio::util::expect(omega0 > 0.0, "morlet_cwt: omega0 must be positive");

  const std::size_t n = samples.size();
  const std::size_t padded = next_power_of_two(2 * n);

  // Mean-removed, zero-padded signal spectrum (computed once).
  const double mean = ftio::util::mean(samples);
  std::vector<Complex> x(padded, Complex(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) x[i] = Complex(samples[i] - mean, 0.0);
  const auto x_hat = fft(x);

  CwtResult result;
  result.sampling_frequency = fs;
  result.frequencies.assign(frequencies.begin(), frequencies.end());
  result.power.resize(frequencies.size());

  // Angular frequency grid of the padded FFT.
  std::vector<double> omega(padded);
  for (std::size_t k = 0; k < padded; ++k) {
    const double f = (k <= padded / 2)
                         ? static_cast<double>(k)
                         : static_cast<double>(k) - static_cast<double>(padded);
    omega[k] = 2.0 * std::numbers::pi * f * fs / static_cast<double>(padded);
  }

  for (std::size_t fi = 0; fi < frequencies.size(); ++fi) {
    ftio::util::expect(frequencies[fi] > 0.0,
                       "morlet_cwt: frequencies must be positive");
    // Morlet: psi_hat(s*w) = pi^{-1/4} exp(-(s*w - omega0)^2 / 2), analytic
    // (zero for negative frequencies). Scale from pseudo-frequency:
    // f = omega0 / (2*pi*s)  =>  s = omega0 / (2*pi*f).
    const double scale =
        omega0 / (2.0 * std::numbers::pi * frequencies[fi]);
    const double norm = std::pow(std::numbers::pi, -0.25) *
                        std::sqrt(2.0 * std::numbers::pi * scale * fs /
                                  static_cast<double>(padded) *
                                  static_cast<double>(padded));

    std::vector<Complex> product(padded);
    for (std::size_t k = 0; k < padded; ++k) {
      if (omega[k] <= 0.0) {
        product[k] = Complex(0.0, 0.0);
        continue;
      }
      const double arg = scale * omega[k] - omega0;
      const double window = norm * std::exp(-0.5 * arg * arg);
      product[k] = x_hat[k] * window;
    }
    const auto coefficients = ifft(product);
    auto& row = result.power[fi];
    row.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      row[i] = std::norm(coefficients[i]);
    }
  }
  return result;
}

std::vector<double> log_spaced_frequencies(double lo, double hi,
                                           std::size_t count) {
  ftio::util::expect(lo > 0.0 && hi > lo, "log_spaced_frequencies: bad range");
  ftio::util::expect(count >= 2, "log_spaced_frequencies: need >= 2 points");
  std::vector<double> out(count);
  const double step = std::log(hi / lo) / static_cast<double>(count - 1);
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = lo * std::exp(step * static_cast<double>(i));
  }
  return out;
}

std::size_t strongest_change_point(const CwtResult& cwt, std::size_t window) {
  const std::size_t n = cwt.time_steps();
  if (n < 2 * window + 1 || window == 0 || cwt.power.empty()) return 0;
  const auto dominant = cwt.dominant_frequency_over_time();

  // Compare median dominant frequency left vs right of each centre.
  auto median_of = [&](std::size_t lo, std::size_t hi) {
    std::vector<double> values(dominant.begin() + static_cast<std::ptrdiff_t>(lo),
                               dominant.begin() + static_cast<std::ptrdiff_t>(hi));
    return ftio::util::median(values);
  };

  std::size_t best = 0;
  double best_shift = 0.0;
  for (std::size_t c = window; c + window < n; ++c) {
    const double left = median_of(c - window, c);
    const double right = median_of(c, c + window);
    if (left <= 0.0 || right <= 0.0) continue;
    const double shift = std::abs(std::log(right / left));
    if (shift > best_shift) {
      best_shift = shift;
      best = c;
    }
  }
  // Only report a genuine shift (> ~15% frequency ratio).
  return best_shift > 0.14 ? best : 0;
}

}  // namespace ftio::signal
