#pragma once

#include <span>
#include <vector>

namespace ftio::signal {

/// Autocorrelation function of `samples` for lags 0..N-1, matching the
/// non-normalised NumPy `correlate(x, x, mode='full')[N-1:]` the paper
/// uses (Sec. II-C), then normalised by the lag-0 value so ACF(0) = 1 and
/// values lie in [-1, 1]. Computed with an FFT-based convolution in
/// O(N log N). The mean is NOT subtracted, mirroring the reference
/// implementation's use of raw `numpy.correlate`.
std::vector<double> autocorrelation(std::span<const double> samples);

/// Mean-removed (statistical) ACF variant, provided for callers that want
/// the textbook definition; also lag-0 normalised.
std::vector<double> autocorrelation_centered(std::span<const double> samples);

/// Batched autocorrelation of many signals (the engine's multi-window
/// path): signals sharing a power-of-two convolution size run their
/// forward and inverse transforms through the plan's stage-major batched
/// execution, with cache-resident batch tiles fanned across up to
/// `threads` workers (0 = hardware concurrency; 1 = serial). out[i] is
/// bit-identical to autocorrelation(signals[i]) for every grouping and
/// thread count. Throws InvalidArgument if any signal is empty.
std::vector<std::vector<double>> autocorrelation_many(
    std::span<const std::span<const double>> signals, unsigned threads = 1);

}  // namespace ftio::signal
