#include "signal/lombscargle.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

std::vector<double> lomb_scargle_power(std::span<const double> times,
                                       std::span<const double> values,
                                       std::span<const double> frequencies) {
  ftio::util::expect(times.size() == values.size(),
                     "lomb_scargle_power: times/values size mismatch");
  std::vector<double> power(frequencies.size(), 0.0);
  const std::size_t n = times.size();
  if (n < 2) return power;

  const double mean = ftio::util::mean(values);
  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = values[i] - mean;

  for (std::size_t f = 0; f < frequencies.size(); ++f) {
    ftio::util::expect(frequencies[f] > 0.0,
                       "lomb_scargle_power: frequencies must be positive");
    const double w = 2.0 * std::numbers::pi * frequencies[f];
    // One trig pair per point: the double-angle sums for tau come from
    // cos2 = c^2 - s^2, sin2 = 2cs, and the projections onto the
    // tau-shifted basis are recovered by rotating the unshifted sums.
    double yc = 0.0;  // sum y~ cos(w t)
    double ys = 0.0;  // sum y~ sin(w t)
    double c2 = 0.0;  // sum cos(2 w t)
    double s2 = 0.0;  // sum sin(2 w t)
    for (std::size_t i = 0; i < n; ++i) {
      const double c = std::cos(w * times[i]);
      const double s = std::sin(w * times[i]);
      yc += centered[i] * c;
      ys += centered[i] * s;
      c2 += c * c - s * s;
      s2 += 2.0 * c * s;
    }
    const double two_wtau = std::atan2(s2, c2);
    const double wtau = 0.5 * two_wtau;
    const double ct = std::cos(wtau);
    const double st = std::sin(wtau);
    // sum cos^2 w(t - tau) = n/2 + (C2 cos 2wtau + S2 sin 2wtau)/2,
    // and the sin^2 sum is the complement to n.
    const double half_spread = 0.5 * (c2 * std::cos(two_wtau) +
                                      s2 * std::sin(two_wtau));
    const double cc = 0.5 * static_cast<double>(n) + half_spread;
    const double ss = 0.5 * static_cast<double>(n) - half_spread;
    const double yct = yc * ct + ys * st;  // sum y~ cos w(t - tau)
    const double yst = ys * ct - yc * st;  // sum y~ sin w(t - tau)
    double p = 0.0;
    if (cc > 0.0) p += 0.5 * yct * yct / cc;
    if (ss > 0.0) p += 0.5 * yst * yst / ss;
    power[f] = p;
  }
  return power;
}

}  // namespace ftio::signal
