#include "signal/spectrum.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "signal/batch_util.hpp"
#include "signal/plan.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"

namespace ftio::signal {

double Spectrum::frequency_step() const {
  if (total_samples == 0) return 0.0;
  return sampling_frequency / static_cast<double>(total_samples);
}

namespace {

/// The post-transform half of compute_spectrum: derives the Sec. II-B1
/// spectrum fields from the packed single-sided bins. One shared function
/// (not two copies) so the batched and per-signal paths produce the same
/// instruction sequence — and therefore identical doubles — bit for bit.
Spectrum finish_spectrum(const double* bin_re, const double* bin_im,
                         std::size_t n, double fs) {
  const std::size_t half = n / 2;  // single-sided: k in [0, N/2]
  Spectrum s;
  s.sampling_frequency = fs;
  s.total_samples = n;
  s.frequencies.resize(half + 1);
  s.amplitudes.resize(half + 1);
  s.phases.resize(half + 1);
  s.power.resize(half + 1);
  s.normed_power.resize(half + 1);

  double total_power = 0.0;
  for (std::size_t k = 0; k <= half; ++k) {
    s.frequencies[k] =
        static_cast<double>(k) * fs / static_cast<double>(n);
    s.amplitudes[k] = std::hypot(bin_re[k], bin_im[k]);
    s.phases[k] = std::atan2(bin_im[k], bin_re[k]);
    s.power[k] = s.amplitudes[k] * s.amplitudes[k] / static_cast<double>(n);
    total_power += s.power[k];
  }
  for (std::size_t k = 0; k <= half; ++k) {
    s.normed_power[k] = total_power > 0.0 ? s.power[k] / total_power : 0.0;
  }
  return s;
}

}  // namespace

Spectrum compute_spectrum(std::span<const double> samples, double fs) {
  ftio::util::expect(!samples.empty(), "compute_spectrum: empty signal");
  ftio::util::expect(fs > 0.0, "compute_spectrum: fs must be positive");

  // Plan-cached packed real transform into per-thread planar scratch:
  // only the single-sided N/2+1 bins the spectrum reads are ever computed
  // or stored (the conjugate-symmetric upper half no longer exists), the
  // lanes stay split re[]/im[] end-to-end (no interleaved std::complex
  // buffer anywhere on the path), and the buffers are reused across calls
  // instead of reallocated.
  const std::size_t n = samples.size();
  const std::size_t half = n / 2;
  thread_local std::vector<double> bin_re;
  thread_local std::vector<double> bin_im;
  bin_re.resize(half + 1);
  bin_im.resize(half + 1);
  rfft_half_planar_into(samples, bin_re, bin_im);
  return finish_spectrum(bin_re.data(), bin_im.data(), n, fs);
}

std::vector<Spectrum> compute_spectra(
    std::span<const std::span<const double>> signals, double fs,
    unsigned threads) {
  ftio::util::expect(fs > 0.0, "compute_spectra: fs must be positive");
  std::vector<Spectrum> out(signals.size());
  if (signals.empty()) return out;
  for (const auto& s : signals) {
    ftio::util::expect(!s.empty(), "compute_spectra: empty signal");
  }

  // Group the windows by length: every same-length group runs its
  // forward transforms through the plan's stage-major batched execution,
  // split over cache-resident batch tiles across workers. Batched rows
  // are bit-identical to per-signal transforms and finish_spectrum is the
  // one shared epilogue, so out[i] always equals compute_spectrum
  // (signals[i], fs) exactly, whatever the grouping.
  detail::grouped_batch_tiles(
      signals.size(), threads,
      [&](std::size_t i) { return signals[i].size(); },
      [&](std::size_t i) { out[i] = compute_spectrum(signals[i], fs); },
      [&](const FftPlan& plan, std::span<const std::size_t> tile) {
        const std::size_t n = plan.size();
        const std::size_t bins = n / 2 + 1;
        const std::size_t rows = tile.size();
        thread_local std::vector<double> in_rows;
        thread_local std::vector<double> bin_re;
        thread_local std::vector<double> bin_im;
        in_rows.resize(rows * n);
        bin_re.resize(rows * bins);
        bin_im.resize(rows * bins);
        for (std::size_t r = 0; r < rows; ++r) {
          const auto& sig = signals[tile[r]];
          std::copy(sig.begin(), sig.end(),
                    in_rows.begin() + static_cast<std::ptrdiff_t>(r * n));
        }
        plan.rfft_half_planar_batch_into(rows, n, in_rows, bins, bin_re,
                                         bin_im);
        for (std::size_t r = 0; r < rows; ++r) {
          out[tile[r]] = finish_spectrum(bin_re.data() + r * bins,
                                         bin_im.data() + r * bins, n, fs);
        }
      });
  return out;
}

CosineWave wave_for_bin(const Spectrum& spectrum, std::size_t k) {
  ftio::util::expect(k < spectrum.frequencies.size(),
                     "wave_for_bin: bin out of range");
  const double n = static_cast<double>(spectrum.total_samples);
  CosineWave w;
  w.frequency = spectrum.frequencies[k];
  // Eq. (1): DC contributes X_0/N; interior bins contribute 2|X_k|/N. The
  // Nyquist bin of an even-length transform has no conjugate twin in the
  // single-sided half, so like DC it is not doubled.
  const bool has_twin =
      k > 0 && !(spectrum.total_samples % 2 == 0 &&
                 k == spectrum.total_samples / 2);
  w.amplitude = (has_twin ? 2.0 : 1.0) * spectrum.amplitudes[k] / n;
  w.phase = spectrum.phases[k];
  return w;
}

std::vector<double> synthesize(std::span<const CosineWave> waves,
                               double dc_offset, double fs,
                               std::size_t n_samples) {
  ftio::util::expect(fs > 0.0, "synthesize: fs must be positive");
  std::vector<double> out(n_samples, dc_offset);
  for (const auto& w : waves) {
    for (std::size_t i = 0; i < n_samples; ++i) {
      const double t = static_cast<double>(i) / fs;
      out[i] += w.amplitude *
                std::cos(2.0 * std::numbers::pi * w.frequency * t + w.phase);
    }
  }
  return out;
}

}  // namespace ftio::signal
