#include "signal/spectrum.hpp"

#include <cmath>
#include <numbers>

#include "signal/plan.hpp"
#include "util/error.hpp"

namespace ftio::signal {

double Spectrum::frequency_step() const {
  if (total_samples == 0) return 0.0;
  return sampling_frequency / static_cast<double>(total_samples);
}

Spectrum compute_spectrum(std::span<const double> samples, double fs) {
  ftio::util::expect(!samples.empty(), "compute_spectrum: empty signal");
  ftio::util::expect(fs > 0.0, "compute_spectrum: fs must be positive");

  // Plan-cached packed real transform into per-thread planar scratch:
  // only the single-sided N/2+1 bins the spectrum reads are ever computed
  // or stored (the conjugate-symmetric upper half no longer exists), the
  // lanes stay split re[]/im[] end-to-end (no interleaved std::complex
  // buffer anywhere on the path), and the buffers are reused across calls
  // instead of reallocated.
  const std::size_t n = samples.size();
  const std::size_t half = n / 2;  // single-sided: k in [0, N/2]
  thread_local std::vector<double> bin_re;
  thread_local std::vector<double> bin_im;
  bin_re.resize(half + 1);
  bin_im.resize(half + 1);
  rfft_half_planar_into(samples, bin_re, bin_im);

  Spectrum s;
  s.sampling_frequency = fs;
  s.total_samples = n;
  s.frequencies.resize(half + 1);
  s.amplitudes.resize(half + 1);
  s.phases.resize(half + 1);
  s.power.resize(half + 1);
  s.normed_power.resize(half + 1);

  double total_power = 0.0;
  for (std::size_t k = 0; k <= half; ++k) {
    s.frequencies[k] =
        static_cast<double>(k) * fs / static_cast<double>(n);
    s.amplitudes[k] = std::hypot(bin_re[k], bin_im[k]);
    s.phases[k] = std::atan2(bin_im[k], bin_re[k]);
    s.power[k] = s.amplitudes[k] * s.amplitudes[k] / static_cast<double>(n);
    total_power += s.power[k];
  }
  for (std::size_t k = 0; k <= half; ++k) {
    s.normed_power[k] = total_power > 0.0 ? s.power[k] / total_power : 0.0;
  }
  return s;
}

CosineWave wave_for_bin(const Spectrum& spectrum, std::size_t k) {
  ftio::util::expect(k < spectrum.frequencies.size(),
                     "wave_for_bin: bin out of range");
  const double n = static_cast<double>(spectrum.total_samples);
  CosineWave w;
  w.frequency = spectrum.frequencies[k];
  // Eq. (1): DC contributes X_0/N; interior bins contribute 2|X_k|/N. The
  // Nyquist bin of an even-length transform has no conjugate twin in the
  // single-sided half, so like DC it is not doubled.
  const bool has_twin =
      k > 0 && !(spectrum.total_samples % 2 == 0 &&
                 k == spectrum.total_samples / 2);
  w.amplitude = (has_twin ? 2.0 : 1.0) * spectrum.amplitudes[k] / n;
  w.phase = spectrum.phases[k];
  return w;
}

std::vector<double> synthesize(std::span<const CosineWave> waves,
                               double dc_offset, double fs,
                               std::size_t n_samples) {
  ftio::util::expect(fs > 0.0, "synthesize: fs must be positive");
  std::vector<double> out(n_samples, dc_offset);
  for (const auto& w : waves) {
    for (std::size_t i = 0; i < n_samples; ++i) {
      const double t = static_cast<double>(i) / fs;
      out[i] += w.amplitude *
                std::cos(2.0 * std::numbers::pi * w.frequency * t + w.phase);
    }
  }
  return out;
}

}  // namespace ftio::signal
