#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace ftio::signal {

/// Options mirroring the SciPy `find_peaks` parameters the paper relies on
/// (it calls find_peaks with a threshold of 0.15 on the ACF, Sec. II-C).
struct PeakOptions {
  /// Minimum absolute height of a peak (SciPy `height`).
  std::optional<double> min_height;
  /// Minimum vertical distance to the neighbouring samples
  /// (SciPy `threshold`).
  std::optional<double> min_threshold;
  /// Minimum number of samples between neighbouring peaks
  /// (SciPy `distance`); smaller peaks are removed first.
  std::optional<std::size_t> min_distance;
  /// Minimum prominence (SciPy `prominence`).
  std::optional<double> min_prominence;
};

/// A detected local maximum.
struct Peak {
  std::size_t index = 0;     ///< sample index of the peak
  double height = 0.0;       ///< value at the peak
  double prominence = 0.0;   ///< topographic prominence
};

/// Finds local maxima of `values`. A flat-topped maximum reports the
/// middle sample of its plateau, matching SciPy. Filters are applied in
/// SciPy's order: height, threshold, distance, prominence.
std::vector<Peak> find_peaks(std::span<const double> values,
                             const PeakOptions& options = {});

}  // namespace ftio::signal
