#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace ftio::signal {

/// Continuous wavelet transform with a Morlet mother wavelet.
///
/// The paper's conclusion names this as the designated extension: "our
/// approach rests on DFT, which has a high-frequency resolution but no
/// time resolution. We plan to explore merging the result with the wavelet
/// transform for a more comprehensive characterization, to prepare for
/// cases where we need both." (Sec. VI). The CWT localises each frequency
/// in time, so a change in the I/O period becomes visible as a shift of
/// scalogram power.
struct CwtResult {
  double sampling_frequency = 0.0;
  /// Analysed pseudo-frequencies in Hz, one row per entry.
  std::vector<double> frequencies;
  /// power[f][n] = |W(f, t_n)|^2 / s(f), the scale-rectified scalogram
  /// (Liu et al. 2007): equal-amplitude tones carry equal power whichever
  /// analysed frequency they match, so row comparisons are unbiased.
  std::vector<std::vector<double>> power;

  std::size_t time_steps() const {
    return power.empty() ? 0 : power.front().size();
  }

  /// Index of the frequency with the most total energy.
  std::size_t dominant_row() const;

  /// For each time step, the analysed frequency with the highest
  /// scalogram power — the instantaneous dominant frequency.
  std::vector<double> dominant_frequency_over_time() const;
};

/// Computes the Morlet CWT of `samples` (sampled at `fs`) for the given
/// pseudo-frequencies. `omega0` is the Morlet centre frequency parameter
/// (6.0 gives the usual time/frequency trade-off). FFT-based through one
/// shared plan handle at the padded size, so each scale costs O(N log N)
/// with no per-row table rebuilds or allocations; the per-frequency rows
/// fan across util::parallel_for (`threads` workers, 0 = all cores; the
/// result does not depend on the thread count). The signal mean is
/// removed first (the DC offset otherwise bleeds into every scale).
CwtResult morlet_cwt(std::span<const double> samples, double fs,
                     std::span<const double> frequencies,
                     double omega0 = 6.0, unsigned threads = 0);

/// Convenience: logarithmically spaced frequencies between lo and hi Hz.
std::vector<double> log_spaced_frequencies(double lo, double hi,
                                           std::size_t count);

/// Detects the strongest change point of the time-frequency behaviour:
/// compares the dominant analysed frequency in a sliding pair of windows
/// and returns the sample index where it shifts the most, or nullopt when
/// the dominant frequency never genuinely shifts (so a detected shift is
/// distinguishable from "no shift" even at low indices). `window` is the
/// comparison half-width in samples.
std::optional<std::size_t> strongest_change_point(const CwtResult& cwt,
                                                  std::size_t window);

}  // namespace ftio::signal
