#include "signal/fft.hpp"

#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace ftio::signal {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// In-place iterative radix-2 Cooley-Tukey. `invert` selects the inverse
/// transform (without the 1/N normalisation).
void fft_radix2(std::vector<Complex>& a, bool invert) {
  const std::size_t n = a.size();
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (invert ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const Complex wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Complex w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const Complex u = a[i + j];
        const Complex v = a[i + j + len / 2] * w;
        a[i + j] = u + v;
        a[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

/// Bluestein's algorithm: expresses an arbitrary-size DFT as a convolution,
/// evaluated with power-of-two FFTs. kn/N phases are computed with k*n
/// reduced mod 2N to keep the chirp arguments accurate for large N.
std::vector<Complex> bluestein(std::span<const Complex> input, bool invert) {
  const std::size_t n = input.size();
  const std::size_t m = next_power_of_two(2 * n - 1);

  // Chirp w_k = exp(-i*pi*k^2/n) (conjugated for the inverse transform).
  std::vector<Complex> chirp(n);
  for (std::size_t k = 0; k < n; ++k) {
    // k^2 mod 2n avoids catastrophic phase error for large k.
    const std::size_t k2 = (k * k) % (2 * n);
    const double angle =
        (invert ? 1.0 : -1.0) * std::numbers::pi * static_cast<double>(k2) /
        static_cast<double>(n);
    chirp[k] = Complex(std::cos(angle), std::sin(angle));
  }

  std::vector<Complex> a(m, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) a[k] = input[k] * chirp[k];

  std::vector<Complex> b(m, Complex(0.0, 0.0));
  b[0] = std::conj(chirp[0]);
  for (std::size_t k = 1; k < n; ++k) {
    b[k] = b[m - k] = std::conj(chirp[k]);
  }

  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t i = 0; i < m; ++i) a[i] *= b[i];
  fft_radix2(a, true);
  const double scale = 1.0 / static_cast<double>(m);

  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    out[k] = a[k] * scale * chirp[k];
  }
  return out;
}

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<Complex> fft(std::span<const Complex> input) {
  ftio::util::expect(!input.empty(), "fft: empty input");
  if (input.size() == 1) return {input[0]};
  if (is_power_of_two(input.size())) {
    std::vector<Complex> a(input.begin(), input.end());
    fft_radix2(a, false);
    return a;
  }
  return bluestein(input, false);
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  ftio::util::expect(!input.empty(), "ifft: empty input");
  std::vector<Complex> out;
  if (input.size() == 1) {
    out = {input[0]};
  } else if (is_power_of_two(input.size())) {
    out.assign(input.begin(), input.end());
    fft_radix2(out, true);
  } else {
    out = bluestein(input, true);
  }
  const double scale = 1.0 / static_cast<double>(input.size());
  for (auto& v : out) v *= scale;
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  std::vector<Complex> complex_input(input.size());
  for (std::size_t i = 0; i < input.size(); ++i) {
    complex_input[i] = Complex(input[i], 0.0);
  }
  return fft(complex_input);
}

std::vector<Complex> dft_direct(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTwoPi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n);
      out[k] += input[j] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace ftio::signal
