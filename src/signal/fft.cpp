#include "signal/fft.hpp"

#include <cmath>
#include <numbers>

#include "signal/plan.hpp"
#include "util/error.hpp"

namespace ftio::signal {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

}  // namespace

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<Complex> fft(std::span<const Complex> input) {
  ftio::util::expect(!input.empty(), "fft: empty input");
  std::vector<Complex> out(input.size());
  get_plan(input.size())->forward(input, out);
  return out;
}

std::vector<Complex> ifft(std::span<const Complex> input) {
  ftio::util::expect(!input.empty(), "ifft: empty input");
  std::vector<Complex> out(input.size());
  get_plan(input.size())->inverse(input, out);
  return out;
}

std::vector<Complex> rfft(std::span<const double> input) {
  ftio::util::expect(!input.empty(), "rfft: empty input");
  std::vector<Complex> out(input.size());
  get_plan(input.size())->forward_real(input, out);
  return out;
}

std::vector<Complex> rfft_half(std::span<const double> input) {
  ftio::util::expect(!input.empty(), "rfft_half: empty input");
  std::vector<Complex> out(input.size() / 2 + 1);
  get_plan(input.size())->forward_real_half(input, out);
  return out;
}

std::vector<Complex> dft_direct(std::span<const Complex> input) {
  const std::size_t n = input.size();
  std::vector<Complex> out(n, Complex(0.0, 0.0));
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      const double angle = -kTwoPi * static_cast<double>(k) *
                           static_cast<double>(j) / static_cast<double>(n);
      out[k] += input[j] * Complex(std::cos(angle), std::sin(angle));
    }
  }
  return out;
}

}  // namespace ftio::signal
