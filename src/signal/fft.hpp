#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ftio::signal {

using Complex = std::complex<double>;

/// Discrete Fourier transform X_k = sum_n x_n * exp(-2*pi*i*k*n/N), the
/// definition in Sec. II-B1 of the paper. Dispatches to the split-radix
/// planar FFT core when N is a power of two and to Bluestein's chirp-z
/// algorithm otherwise, so every N costs O(N log N). Backed by the
/// process-wide plan cache (signal/plan.hpp): twiddle factors,
/// bit-reversal permutations, and Bluestein chirp tables are computed
/// once per size and reused across calls and threads. Batch callers
/// holding split re[]/im[] lanes should prefer the planar entry points
/// in signal/plan.hpp (fft_planar_into and friends) and skip the
/// interleave/deinterleave at the plan boundary entirely.
std::vector<Complex> fft(std::span<const Complex> input);

/// Inverse transform: x_n = (1/N) sum_k X_k * exp(+2*pi*i*k*n/N).
std::vector<Complex> ifft(std::span<const Complex> input);

/// FFT of a real-valued signal (the I/O bandwidth samples). Returns the
/// full N-bin complex spectrum; callers typically inspect only bins
/// [0, N/2] because real input makes the spectrum conjugate-symmetric.
/// Legacy adapter over rfft_half: the packed half transform runs, then
/// the upper half is mirrored. New code should prefer rfft_half (or
/// rfft_half_into in signal/plan.hpp) and never materialise the mirror.
std::vector<Complex> rfft(std::span<const double> input);

/// Packed single-sided FFT of a real signal: only the N/2+1 non-redundant
/// bins k in [0, N/2] are computed and stored. Even N runs as one
/// half-size complex transform through the split-radix core; the
/// conjugate-symmetric upper half is never formed. Bit-identical to the
/// first N/2+1 bins of rfft. Hot-path callers should prefer
/// rfft_half_planar_into (signal/plan.hpp), which writes caller-owned
/// re/im lanes with no interleaved buffer at all.
std::vector<Complex> rfft_half(std::span<const double> input);

/// Reference O(N^2) DFT used for validating the FFT in tests.
std::vector<Complex> dft_direct(std::span<const Complex> input);

/// True when n is a power of two (n >= 1).
bool is_power_of_two(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_power_of_two(std::size_t n);

}  // namespace ftio::signal
