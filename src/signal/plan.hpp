#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "signal/fft.hpp"

namespace ftio::signal {

/// Precomputed transform state for one size N. A plan owns every table the
/// transform needs — the bit-reversal permutation, the split-radix stage
/// schedule and its per-stage twiddle pairs for the power-of-two path, the
/// chirp and its precomputed spectrum for the Bluestein path, and (for
/// even N) a half-size sub-plan plus the unpack twiddles that make the
/// real-input fast path possible. Plans are immutable after construction
/// and therefore safe to share across threads; mutable scratch lives in
/// per-thread workspaces inside the execution functions.
///
/// The power-of-two core is a split-radix (radix-2/4 mixed) decomposition
/// over deinterleaved (planar) real/imag double arrays: each size-L node
/// combines one L/2 sub-transform of the even samples with two L/4
/// sub-transforms of the odd samples using the conjugate twiddle pair
/// (w^k, w^{3k}) — about a third fewer real multiplies than the uniform
/// fused-radix-4 schedule it replaces (kept as detail::Radix4Tables /
/// radix4_planar for tests and benches). Input is permuted into
/// bit-reversed order up front; above detail::kBlockedBitrevMinN the
/// permutation runs cache-blocked (COBRA-style 32x32 tiles) so large
/// transforms stop thrashing on the scattered gather, and the butterfly
/// schedule itself recurses depth-first above detail::kSplitRadixLeafLen
/// so every subtree that fits in cache is finished before the next one is
/// touched. The hot loops are contiguous stride-1 double arithmetic with
/// no std::complex calls, which GCC and Clang auto-vectorise (SSE2
/// baseline, AVX2 with -march=x86-64-v3 — see the FTIO_X86_64_V3 CMake
/// option).
///
/// Layout contract of the planar API: a split-complex signal is a pair of
/// equal-length double arrays re[]/im[] owned by the caller; element k of
/// the logical complex signal is (re[k], im[k]). The planar entry points
/// read and write only such arrays — no interleaved std::complex buffer
/// is formed anywhere on the path — and are the native representation of
/// the core; the std::complex entry points survive as thin adapters that
/// deinterleave/interleave at the edges. Planar outputs are bit-identical
/// to the corresponding lanes of the interleaved entry points.
///
/// Most callers should not construct plans directly but go through
/// `plan_cache()` (or the `fft`/`rfft`/`ifft` free functions, which do so
/// internally). Direct construction is the "cold path": it deliberately
/// pays the full table-building cost per call, which is what the
/// pre-plan-cache implementation paid on every transform — `bench/
/// micro_fft.cpp` uses it as the baseline.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Forward DFT: out_k = sum_n in_n exp(-2*pi*i*k*n/N).
  /// in.size() == out.size() == size(). in and out may alias.
  void forward(std::span<const Complex> in, std::span<Complex> out) const;

  /// Inverse DFT including the 1/N normalisation.
  void inverse(std::span<const Complex> in, std::span<Complex> out) const;

  /// Forward DFT of a planar split-complex signal: reads re/im lanes of
  /// length size(), writes the spectrum into the caller-owned out lanes.
  /// out may fully alias in (in-place); partial overlap is undefined.
  void forward_planar(std::span<const double> in_re,
                      std::span<const double> in_im,
                      std::span<double> out_re,
                      std::span<double> out_im) const;

  /// Inverse DFT on planar lanes, including the 1/N normalisation.
  /// Aliasing rules as forward_planar.
  void inverse_planar(std::span<const double> in_re,
                      std::span<const double> in_im,
                      std::span<double> out_re,
                      std::span<double> out_im) const;

  // -------------------------------------------------------------------------
  // Batched planar execution. A batch is B planar signals stored as rows
  // of one re lane and one im lane: row b's re lane starts at
  // re[b * stride] (stride >= row length, so rows may be padded apart).
  // Rows execute in small interleaved groups, stage-major: each
  // split-radix pass runs across every row of the group before the next
  // pass starts, so each twiddle stream is loaded once per stage instead
  // of once per signal, and every butterfly loop — including the short
  // L=8/16 combines whose 2-4 iteration inner loops run scalar in the
  // single-signal core — executes as explicit SIMD over the
  // group-widened index space (with a runtime-dispatched x86-64-v3 clone
  // on AVX2 hosts). The bit-reversal gather is fused into the (2,4) base
  // pass, and above detail::kBatchLeafElems the stages recurse
  // depth-first so sub-blocks stay L1-resident. Row b of a batch call is
  // bit-identical to the corresponding single-signal call on row b, for
  // every batch size and group split.
  // -------------------------------------------------------------------------

  /// Batched forward DFT over `batch` planar rows of length size() spaced
  /// `stride` doubles apart. The out lanes may fully alias the in lanes
  /// (same bases and stride); partial overlap is undefined.
  void forward_planar_batch(std::size_t batch, std::size_t stride,
                            std::span<const double> in_re,
                            std::span<const double> in_im,
                            std::span<double> out_re,
                            std::span<double> out_im) const;

  /// Batched inverse DFT (1/N normalisation included); layout and aliasing
  /// rules as forward_planar_batch.
  void inverse_planar_batch(std::size_t batch, std::size_t stride,
                            std::span<const double> in_re,
                            std::span<const double> in_im,
                            std::span<double> out_re,
                            std::span<double> out_im) const;

  /// Batched packed single-sided real transform: `batch` real rows of
  /// length size() spaced `in_stride` apart, producing half-spectrum rows
  /// of size()/2 + 1 bins spaced `out_stride` apart in the out lanes.
  /// Row b is bit-identical to forward_real_half_planar on row b.
  void rfft_half_planar_batch_into(std::size_t batch, std::size_t in_stride,
                                   std::span<const double> in,
                                   std::size_t out_stride,
                                   std::span<double> out_re,
                                   std::span<double> out_im) const;

  /// Batched inverse of rfft_half_planar_batch_into: half-spectrum rows of
  /// size()/2 + 1 bins spaced `in_stride` apart reconstruct real rows of
  /// length size() spaced `out_stride` apart (1/N normalisation included).
  void irfft_half_planar_batch_into(std::size_t batch, std::size_t in_stride,
                                    std::span<const double> in_re,
                                    std::span<const double> in_im,
                                    std::size_t out_stride,
                                    std::span<double> out) const;

  /// Rows per cache-resident batch tile for this plan: the largest tile
  /// whose transposed working set (tile x transform length x two lanes)
  /// stays within detail::kBatchTileBytes. Callers fanning a large batch
  /// across threads should split it into chunks of this many rows so each
  /// worker executes whole tiles. `real_input` selects the packed real
  /// path, whose internal transform runs at size()/2.
  std::size_t batch_tile_rows(bool real_input) const;

  /// Forward DFT of a real signal, returning the full N-bin conjugate-
  /// symmetric spectrum. Legacy adapter: runs the packed half transform
  /// and mirrors the upper half. out.size() == size().
  void forward_real(std::span<const double> in, std::span<Complex> out) const;

  /// Packed single-sided transform of a real signal: writes only the
  /// N/2+1 non-redundant bins (indices k in [0, N/2]); the conjugate-
  /// symmetric upper half is never computed or stored. Even N runs as one
  /// half-size complex transform (N real -> N/2 complex + O(N) unpack),
  /// packed straight into the planar split buffers when N/2 is a power of
  /// two; odd N falls back to the complex transform and copies the half.
  /// Interleaved adapter over forward_real_half_planar.
  /// out.size() == size()/2 + 1.
  void forward_real_half(std::span<const double> in,
                         std::span<Complex> out) const;

  /// Planar-output variant of forward_real_half: the packed single-sided
  /// spectrum lands in caller-owned re/im lanes of length size()/2 + 1.
  /// Bit-identical to the lanes of forward_real_half.
  void forward_real_half_planar(std::span<const double> in,
                                std::span<double> out_re,
                                std::span<double> out_im) const;

  /// Inverse of forward_real_half: reconstructs the N real samples from
  /// the packed N/2+1 half spectrum (which must be the transform of a
  /// real signal: imag(in[0]) and, for even N, imag(in[N/2]) are ignored).
  /// Includes the 1/N normalisation. Interleaved adapter over
  /// inverse_real_half_planar. in.size() == size()/2 + 1,
  /// out.size() == size().
  void inverse_real_half(std::span<const Complex> in,
                         std::span<double> out) const;

  /// Planar-input variant of inverse_real_half: consumes the packed half
  /// spectrum from caller-owned re/im lanes of length size()/2 + 1.
  void inverse_real_half_planar(std::span<const double> in_re,
                                std::span<const double> in_im,
                                std::span<double> out) const;

  /// Forces construction of the lazily built tables so that subsequent
  /// transforms on worker threads find everything resident: the Bluestein
  /// state for complex transforms, plus (with for_real_input and even N)
  /// the half-size sub-plan and unpack twiddles. Thread-safe.
  void prepare(bool for_real_input) const;

 private:
  /// One split-radix combine stage of length L >= 8: a size-L node merges
  /// U = FFT_{L/2}(even) with Z/Z' = FFT_{L/4}(x[4n+1]) / FFT_{L/4}
  /// (x[4n+3]) through the twiddle pair (w^k, w^{3k}), k < L/4. Twiddles
  /// are stored split and contiguous so the inner loop is pure stride-1
  /// double math.
  struct SplitStage {
    std::size_t len = 0;            ///< L; quarter = L/4 butterflies/node
    std::vector<double> w1re, w1im; ///< exp(-2*pi*i*k/L),   k < L/4
    std::vector<double> w3re, w3im; ///< exp(-2*pi*i*3k/L),  k < L/4
  };

  void pow2_transform(std::span<const Complex> in, std::span<Complex> out,
                      bool invert) const;
  void pow2_inplace(std::span<Complex> a, bool invert) const;
  /// Runs the split-radix schedule over bit-reverse-permuted planar
  /// arrays: the fused (2,4) base pass, then the length-8..N combine
  /// stages, recursing depth-first above detail::kSplitRadixLeafLen.
  void split_passes(double* re, double* im, bool invert) const;
  template <bool Inv>
  void split_subtree(double* re, double* im, std::size_t len,
                     std::size_t pos) const;
  template <bool Inv>
  void split_iterative(double* re, double* im, std::size_t len,
                       std::size_t pos) const;
  /// Runs the whole split-radix schedule stage-major over one interleaved
  /// batch group: element k of group row g lives at re[k * G + g] (G the
  /// fixed internal group width). The group working set is cache-resident
  /// whenever batching is engaged (batch_tile_rows > 1), so every pass
  /// sweeps all rows before the next with no depth-first recursion.
  template <bool Inv>
  void split_passes_batch(double* re, double* im) const;
  /// The combine stages of split_passes_batch alone (lengths 8..N), for
  /// callers that already ran the base pass fused with their gather.
  template <bool Inv>
  void split_stages_batch(double* re, double* im) const;
  template <bool Inv>
  void split_subtree_batch(double* re, double* im, std::size_t len,
                           std::size_t pos) const;
  /// Builds the group-duplicated twiddle tables on first batched use.
  void ensure_batch_tables() const;
  template <bool Inv>
  void planar_batch_group(std::size_t stride, const double* in_re,
                          const double* in_im, double* out_re,
                          double* out_im) const;
  void rfft_half_batch_group(std::size_t in_stride, const double* in,
                             std::size_t out_stride, double* out_re,
                             double* out_im) const;
  void irfft_half_batch_group(std::size_t in_stride, const double* in_re,
                              const double* in_im, std::size_t out_stride,
                              double* out) const;
  void bluestein_forward(std::span<const Complex> in,
                         std::span<Complex> out) const;
  void ensure_bluestein_tables() const;
  void ensure_real_tables() const;

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Split-radix tables (power-of-two N only).
  std::vector<std::uint32_t> bitrev_;  ///< permutation, size N
  /// Per-4-block leaf schedule for the fused (2,4) base pass: 1 when the
  /// block holds a size-4 node of the split-radix tree (full 4-point
  /// DFT), 0 when it holds two independent size-2 nodes (two radix-2
  /// butterflies). Every aligned 4-block is exactly one of the two.
  std::vector<std::uint8_t> base4_;
  std::vector<SplitStage> stages_;  ///< lengths 8, 16, ..., N

  // Batched-execution tables: the combine-stage twiddles duplicated
  // group-wise (entry k repeated once per group row) so the interleaved
  // batch kernels keep contiguous twiddle streams. Built lazily on the
  // first batched call — per-signal transforms never touch them.
  mutable std::once_flag batch_once_;
  mutable std::vector<SplitStage> batch_stages_;

  // Bluestein tables (non power-of-two N only). Built lazily on the
  // first complex transform: an even non-pow2 plan that only ever serves
  // forward_real never touches them, and they are the expensive part
  // (a next_pow2(2N-1) sub-plan plus an FFT of the chirp).
  std::size_t m_ = 0;                   ///< pow2 convolution size >= 2N-1
  mutable std::once_flag bluestein_once_;
  mutable std::vector<Complex> chirp_;  ///< exp(-i*pi*k^2/N), size N
  mutable std::vector<Complex> bhat_;   ///< FFT_m of the wrapped conj chirp
  mutable std::shared_ptr<const FftPlan> sub_;  ///< pow2 plan for m

  // Real-input fast path (even N only). Built lazily on the first
  // forward_real_half/inverse_real_half call — eager construction would
  // recursively drag a half-plan chain (N/2, N/4, ...) into the cache for
  // plans that only ever run complex transforms (e.g. Bluestein
  // sub-plans).
  mutable std::once_flag real_once_;
  mutable std::shared_ptr<const FftPlan> half_;  ///< cached plan for N/2
  mutable std::vector<double> rtw_re_;  ///< Re exp(-2*pi*i*k/N), k <= N/2
  mutable std::vector<double> rtw_im_;  ///< Im exp(-2*pi*i*k/N), k <= N/2
};

/// Thread-safe LRU cache of FftPlans keyed by N. One global instance (see
/// plan_cache()) backs the fft/rfft/ifft free functions so that repeated
/// transforms of the same size reuse tables instead of recomputing them.
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for size n, constructing and caching it on a miss.
  /// Concurrent lookups of the same absent size build the plan exactly
  /// once: the first caller constructs, the rest block on the in-flight
  /// build (counted as miss_waits, not hits) and share the result. The
  /// returned handle stays valid after eviction (shared ownership), so
  /// worker threads can hold a per-thread handle across a whole batch.
  std::shared_ptr<const FftPlan> get(std::size_t n);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    ///< lookups that constructed the plan
    std::uint64_t miss_waits = 0;///< lookups that blocked on another
                                 ///  thread's in-flight construction
    std::uint64_t evictions = 0;
    std::size_t size = 0;        ///< plans currently resident
  };
  Stats stats() const;

  std::size_t capacity() const;
  /// Resizes the cache, evicting least-recently-used plans if needed.
  void set_capacity(std::size_t capacity);
  /// Drops every cached plan and resets the stats counters. Builds that
  /// are in flight when clear() runs cannot be cancelled: they publish
  /// into the emptied cache when they finish (one post-clear miss each).
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide plan cache used by the fft/rfft/ifft free functions.
PlanCache& plan_cache();

/// Convenience: plan_cache().get(n).
std::shared_ptr<const FftPlan> get_plan(std::size_t n);

// ---------------------------------------------------------------------------
// Allocation-free transform entry points (plan-cached, scratch reused).
// Results match the vector-returning fft/ifft/rfft free functions bit for
// bit; the planar variants match the corresponding lanes bit for bit.
// ---------------------------------------------------------------------------

/// out.size() == in.size().
void fft_into(std::span<const Complex> in, std::span<Complex> out);
void ifft_into(std::span<const Complex> in, std::span<Complex> out);
void rfft_into(std::span<const double> in, std::span<Complex> out);

/// Planar split-complex transforms on caller-owned re/im lanes (all four
/// spans the same length). out may fully alias in.
void fft_planar_into(std::span<const double> in_re,
                     std::span<const double> in_im,
                     std::span<double> out_re, std::span<double> out_im);
void ifft_planar_into(std::span<const double> in_re,
                      std::span<const double> in_im,
                      std::span<double> out_re, std::span<double> out_im);

/// Packed single-sided real transform: out.size() == in.size()/2 + 1.
/// Bit-identical to the first N/2+1 bins of rfft_into.
void rfft_half_into(std::span<const double> in, std::span<Complex> out);

/// Planar packed single-sided real transform: out lanes of size
/// in.size()/2 + 1. Bit-identical to the lanes of rfft_half_into.
void rfft_half_planar_into(std::span<const double> in,
                           std::span<double> out_re,
                           std::span<double> out_im);

/// Inverse of rfft_half_into (1/N normalisation included):
/// in.size() == out.size()/2 + 1.
void irfft_half_into(std::span<const Complex> in, std::span<double> out);

/// Planar inverse of rfft_half_planar_into: in lanes of size
/// out.size()/2 + 1.
void irfft_half_planar_into(std::span<const double> in_re,
                            std::span<const double> in_im,
                            std::span<double> out);

namespace detail {

/// The pre-radix-4 scalar kernel: interleaved std::complex radix-2
/// butterflies. Kept as an independently-implemented reference so tests
/// can pin the split-radix core against it on every power-of-two size,
/// and as the baseline bench/micro_fft.cpp measures speedups against.
struct Radix2Tables {
  explicit Radix2Tables(std::size_t n);  ///< n must be a power of two
  std::vector<std::uint32_t> bitrev;     ///< permutation, size n
  std::vector<Complex> twiddle;          ///< exp(-2*pi*i*j/n), j < n/2
};

/// In-place radix-2 transform of a (a.size() == tables size). No output
/// scaling: the inverse pass omits the 1/N factor.
void radix2_scalar(std::span<Complex> a, const Radix2Tables& tables,
                   bool invert);

/// The PR 3 fused-radix-4 planar kernel, preserved verbatim as a second
/// independent reference (and as the baseline the split-radix core is
/// benchmarked against): stages of length 2..n fused in pairs into
/// radix-4 passes with a radix-2 lead stage when log2 n is odd.
struct Radix4Tables {
  explicit Radix4Tables(std::size_t n);  ///< n must be a power of two
  std::size_t n = 0;
  std::vector<std::uint32_t> bitrev;     ///< permutation, size n
  bool lead_radix2 = false;  ///< odd log2 n: one radix-2 stage first
  bool lead_radix4 = false;  ///< even log2 n: twiddle-free 4-point DFTs
  struct Pass {
    std::size_t half = 0;           ///< L/2 butterflies per block of 2L
    std::vector<double> w1re, w1im; ///< exp(-2*pi*i*j/L),    j < L/2
    std::vector<double> w2re, w2im; ///< exp(-2*pi*i*j/(2L)), j < L/2
  };
  std::vector<Pass> passes;
};

/// In-place fused radix-4 transform over planar lanes that the caller has
/// already permuted into bit-reversed order (tables.bitrev). No output
/// scaling on the inverse.
void radix4_planar(double* re, double* im, const Radix4Tables& tables,
                   bool invert);

/// Above this size the bit-reversal permutation runs cache-blocked
/// (COBRA-style 32x32 tiles: both the sequential and the permuted side
/// of every tile move through L1 instead of striding across the whole
/// array). Measured crossover on the 1-core container: the blocked form
/// is neutral-to-slightly-slower while the working set still fits L2 and
/// wins once the scattered side spills, from N = 2^17 on.
inline constexpr std::size_t kBlockedBitrevMinN = std::size_t{1} << 17;

/// Split-radix subtrees at or below this length execute as iterative
/// stage sweeps over the subtree's contiguous block; larger nodes recurse
/// depth-first so each half/quarter finishes while still cache-resident
/// (2 lanes * 8 B * 2^14 = 256 KiB working set per leaf).
inline constexpr std::size_t kSplitRadixLeafLen = std::size_t{1} << 14;

/// Working-set budget of one batch execution tile (two double lanes of
/// tile x N elements). batch_tile_rows derives the advertised tile from
/// it; plans whose per-row working set alone fills the budget fall back
/// to per-row execution (tile = 1), which is the cache-blocked recursive
/// single-signal core.
inline constexpr std::size_t kBatchTileBytes = std::size_t{1} << 19;

/// Interleaved group subtrees at or below this many elements (transform
/// length times the internal group width) run as iterative stage sweeps;
/// larger blocks recurse depth-first so each sub-block's two-lane working
/// set (16 B per element) finishes L1-resident before the parent combine
/// streams it once more.
inline constexpr std::size_t kBatchLeafElems = std::size_t{1} << 11;

/// out[i] = in[bitrev[i]] over planar lanes, cache-blocked above
/// kBlockedBitrevMinN. in and out must not alias. Because the
/// permutation is an involution this also implements the scatter
/// out[bitrev[i]] = in[i].
void bitrev_permute_planar(const std::uint32_t* bitrev, std::size_t n,
                           const double* in_re, const double* in_im,
                           double* out_re, double* out_im);

/// Deinterleaving gather: (out_re[i], out_im[i]) = pairs[2*bitrev[i] ..],
/// cache-blocked above kBlockedBitrevMinN. `pairs` is any array of 2n
/// doubles holding n (re, im) pairs — an interleaved std::complex buffer
/// or the even/odd packing of a real signal.
void bitrev_permute_pairs(const std::uint32_t* bitrev, std::size_t n,
                          const double* pairs, double* out_re,
                          double* out_im);

}  // namespace detail

}  // namespace ftio::signal
