#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "signal/fft.hpp"

namespace ftio::signal {

/// Precomputed transform state for one size N. A plan owns every table the
/// transform needs — the bit-reversal permutation and per-pass split
/// real/imag twiddle tables for the power-of-two path, the chirp and its
/// precomputed spectrum for the Bluestein path, and (for even N) a
/// half-size sub-plan plus the unpack twiddles that make the real-input
/// fast path possible. Plans are immutable after construction and
/// therefore safe to share across threads; mutable scratch lives in
/// per-thread workspaces inside the execution functions.
///
/// The power-of-two core operates on deinterleaved (planar) real/imag
/// double arrays and fuses butterfly stages in pairs, i.e. radix-4 passes
/// with one radix-2 lead stage when log2(N) is odd. The hot loops are
/// contiguous stride-1 double arithmetic with no std::complex calls, which
/// GCC and Clang auto-vectorise (SSE2 baseline, AVX2 with
/// -march=x86-64-v3 — see the FTIO_X86_64_V3 CMake option).
///
/// Most callers should not construct plans directly but go through
/// `plan_cache()` (or the `fft`/`rfft`/`ifft` free functions, which do so
/// internally). Direct construction is the "cold path": it deliberately
/// pays the full table-building cost per call, which is what the
/// pre-plan-cache implementation paid on every transform — `bench/
/// micro_fft.cpp` uses it as the baseline.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }

  /// Forward DFT: out_k = sum_n in_n exp(-2*pi*i*k*n/N).
  /// in.size() == out.size() == size(). in and out may alias.
  void forward(std::span<const Complex> in, std::span<Complex> out) const;

  /// Inverse DFT including the 1/N normalisation.
  void inverse(std::span<const Complex> in, std::span<Complex> out) const;

  /// Forward DFT of a real signal, returning the full N-bin conjugate-
  /// symmetric spectrum. Legacy adapter: runs forward_real_half and
  /// mirrors the upper half. out.size() == size().
  void forward_real(std::span<const double> in, std::span<Complex> out) const;

  /// Packed single-sided transform of a real signal: writes only the
  /// N/2+1 non-redundant bins (indices k in [0, N/2]); the conjugate-
  /// symmetric upper half is never computed or stored. Even N runs as one
  /// half-size complex transform (N real -> N/2 complex + O(N) unpack),
  /// packed straight into the planar split buffers when N/2 is a power of
  /// two; odd N falls back to the complex transform and copies the half.
  /// out.size() == size()/2 + 1.
  void forward_real_half(std::span<const double> in,
                         std::span<Complex> out) const;

  /// Inverse of forward_real_half: reconstructs the N real samples from
  /// the packed N/2+1 half spectrum (which must be the transform of a
  /// real signal: imag(in[0]) and, for even N, imag(in[N/2]) are ignored).
  /// Includes the 1/N normalisation. in.size() == size()/2 + 1,
  /// out.size() == size().
  void inverse_real_half(std::span<const Complex> in,
                         std::span<double> out) const;

  /// Forces construction of the lazily built tables so that subsequent
  /// transforms on worker threads find everything resident: the Bluestein
  /// state for complex transforms, plus (with for_real_input and even N)
  /// the half-size sub-plan and unpack twiddles. Thread-safe.
  void prepare(bool for_real_input) const;

 private:
  /// One fused pair of butterfly stages (lengths L and 2L) over planar
  /// arrays: the radix-4 workhorse. Twiddles are stored split and
  /// contiguous per pass so the inner loop is pure stride-1 double math.
  struct Radix4Pass {
    std::size_t half = 0;           ///< L/2 butterflies per block of 2L
    std::vector<double> w1re, w1im; ///< exp(-2*pi*i*j/L),    j < L/2
    std::vector<double> w2re, w2im; ///< exp(-2*pi*i*j/(2L)), j < L/2
  };

  void pow2_transform(std::span<const Complex> in, std::span<Complex> out,
                      bool invert) const;
  void pow2_inplace(std::span<Complex> a, bool invert) const;
  /// Runs the butterfly passes over bit-reverse-permuted planar buffers.
  void split_passes(double* re, double* im, bool invert) const;
  void bluestein_forward(std::span<const Complex> in,
                         std::span<Complex> out) const;
  void ensure_bluestein_tables() const;
  void ensure_real_tables() const;

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Split radix-4 tables (power-of-two N only).
  std::vector<std::uint32_t> bitrev_;  ///< permutation, size N
  bool lead_radix2_ = false;  ///< odd log2 N: one radix-2 stage first
  bool lead_radix4_ = false;  ///< even log2 N: twiddle-free 4-point DFTs first
  std::vector<Radix4Pass> passes_;

  // Bluestein tables (non power-of-two N only). Built lazily on the
  // first complex transform: an even non-pow2 plan that only ever serves
  // forward_real never touches them, and they are the expensive part
  // (a next_pow2(2N-1) sub-plan plus an FFT of the chirp).
  std::size_t m_ = 0;                   ///< pow2 convolution size >= 2N-1
  mutable std::once_flag bluestein_once_;
  mutable std::vector<Complex> chirp_;  ///< exp(-i*pi*k^2/N), size N
  mutable std::vector<Complex> bhat_;   ///< FFT_m of the wrapped conj chirp
  mutable std::shared_ptr<const FftPlan> sub_;  ///< pow2 plan for m

  // Real-input fast path (even N only). Built lazily on the first
  // forward_real_half/inverse_real_half call — eager construction would
  // recursively drag a half-plan chain (N/2, N/4, ...) into the cache for
  // plans that only ever run complex transforms (e.g. Bluestein
  // sub-plans).
  mutable std::once_flag real_once_;
  mutable std::shared_ptr<const FftPlan> half_;  ///< cached plan for N/2
  mutable std::vector<Complex> real_twiddle_;    ///< exp(-2*pi*i*k/N), k<=N/2
};

/// Thread-safe LRU cache of FftPlans keyed by N. One global instance (see
/// plan_cache()) backs the fft/rfft/ifft free functions so that repeated
/// transforms of the same size reuse tables instead of recomputing them.
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for size n, constructing and caching it on a miss.
  /// Concurrent lookups of the same absent size build the plan exactly
  /// once: the first caller constructs, the rest block on the in-flight
  /// build (counted as miss_waits, not hits) and share the result. The
  /// returned handle stays valid after eviction (shared ownership), so
  /// worker threads can hold a per-thread handle across a whole batch.
  std::shared_ptr<const FftPlan> get(std::size_t n);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;    ///< lookups that constructed the plan
    std::uint64_t miss_waits = 0;///< lookups that blocked on another
                                 ///  thread's in-flight construction
    std::uint64_t evictions = 0;
    std::size_t size = 0;        ///< plans currently resident
  };
  Stats stats() const;

  std::size_t capacity() const;
  /// Resizes the cache, evicting least-recently-used plans if needed.
  void set_capacity(std::size_t capacity);
  /// Drops every cached plan and resets the stats counters. Builds that
  /// are in flight when clear() runs cannot be cancelled: they publish
  /// into the emptied cache when they finish (one post-clear miss each).
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide plan cache used by the fft/rfft/ifft free functions.
PlanCache& plan_cache();

/// Convenience: plan_cache().get(n).
std::shared_ptr<const FftPlan> get_plan(std::size_t n);

// ---------------------------------------------------------------------------
// Allocation-free transform entry points (plan-cached, scratch reused).
// Results match the vector-returning fft/ifft/rfft free functions bit for
// bit.
// ---------------------------------------------------------------------------

/// out.size() == in.size().
void fft_into(std::span<const Complex> in, std::span<Complex> out);
void ifft_into(std::span<const Complex> in, std::span<Complex> out);
void rfft_into(std::span<const double> in, std::span<Complex> out);

/// Packed single-sided real transform: out.size() == in.size()/2 + 1.
/// Bit-identical to the first N/2+1 bins of rfft_into.
void rfft_half_into(std::span<const double> in, std::span<Complex> out);

/// Inverse of rfft_half_into (1/N normalisation included):
/// in.size() == out.size()/2 + 1.
void irfft_half_into(std::span<const Complex> in, std::span<double> out);

namespace detail {

/// The pre-radix-4 scalar kernel: interleaved std::complex radix-2
/// butterflies. Kept as an independently-implemented reference so tests
/// can pin the radix-4 split core against it on every power-of-two size,
/// and as the baseline bench/micro_fft.cpp measures speedups against.
struct Radix2Tables {
  explicit Radix2Tables(std::size_t n);  ///< n must be a power of two
  std::vector<std::uint32_t> bitrev;     ///< permutation, size n
  std::vector<Complex> twiddle;          ///< exp(-2*pi*i*j/n), j < n/2
};

/// In-place radix-2 transform of a (a.size() == tables size). No output
/// scaling: the inverse pass omits the 1/N factor.
void radix2_scalar(std::span<Complex> a, const Radix2Tables& tables,
                   bool invert);

}  // namespace detail

}  // namespace ftio::signal
