#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "signal/fft.hpp"

namespace ftio::signal {

/// Precomputed transform state for one size N. A plan owns every table the
/// transform needs — twiddle factors and the bit-reversal permutation for
/// the radix-2 path, the chirp and its precomputed spectrum for the
/// Bluestein path, and (for even N) a half-size sub-plan plus the unpack
/// twiddles that make the real-input fast path possible. Plans are
/// immutable after construction and therefore safe to share across
/// threads; mutable scratch lives in per-thread workspaces inside the
/// execution functions.
///
/// Most callers should not construct plans directly but go through
/// `plan_cache()` (or the `fft`/`rfft`/`ifft` free functions, which do so
/// internally). Direct construction is the "cold path": it deliberately
/// pays the full table-building cost per call, which is what the
/// pre-plan-cache implementation paid on every transform — `bench/
/// micro_fft.cpp` uses it as the baseline.
class FftPlan {
 public:
  explicit FftPlan(std::size_t n);

  std::size_t size() const { return n_; }
  /// True when N is a power of two (pure radix-2, no Bluestein tables).
  bool radix2() const { return pow2_; }

  /// Forward DFT: out_k = sum_n in_n exp(-2*pi*i*k*n/N).
  /// in.size() == out.size() == size(). For power-of-two plans in and out
  /// may alias; Bluestein requires distinct buffers only between in and
  /// the internal scratch (aliasing in/out is still fine).
  void forward(std::span<const Complex> in, std::span<Complex> out) const;

  /// Inverse DFT including the 1/N normalisation.
  void inverse(std::span<const Complex> in, std::span<Complex> out) const;

  /// Forward DFT of a real signal, returning the full N-bin conjugate-
  /// symmetric spectrum. Even N takes the half-size fast path (N real ->
  /// N/2 complex transform + O(N) unpack); odd N falls back to the
  /// complex transform.
  void forward_real(std::span<const double> in, std::span<Complex> out) const;

  /// Forces construction of the lazily built tables so that subsequent
  /// transforms on worker threads find everything resident: the Bluestein
  /// state for complex transforms, plus (with for_real_input and even N)
  /// the half-size sub-plan and unpack twiddles. Thread-safe.
  void prepare(bool for_real_input) const;

 private:
  void radix2_inplace(std::span<Complex> a, bool invert) const;
  void bluestein_forward(std::span<const Complex> in,
                         std::span<Complex> out) const;
  void ensure_bluestein_tables() const;
  void ensure_real_tables() const;

  std::size_t n_ = 0;
  bool pow2_ = false;

  // Radix-2 tables (power-of-two N only).
  std::vector<std::uint32_t> bitrev_;   ///< permutation, size N
  std::vector<Complex> twiddle_;        ///< exp(-2*pi*i*j/N), j < N/2

  // Bluestein tables (non power-of-two N only). Built lazily on the
  // first complex transform: an even non-pow2 plan that only ever serves
  // forward_real never touches them, and they are the expensive part
  // (a next_pow2(2N-1) sub-plan plus an FFT of the chirp).
  std::size_t m_ = 0;                   ///< pow2 convolution size >= 2N-1
  mutable std::once_flag bluestein_once_;
  mutable std::vector<Complex> chirp_;  ///< exp(-i*pi*k^2/N), size N
  mutable std::vector<Complex> bhat_;   ///< FFT_m of the wrapped conj chirp
  mutable std::shared_ptr<const FftPlan> sub_;  ///< pow2 plan for m

  // Real-input fast path (even N only). Built lazily on the first
  // forward_real call — eager construction would recursively drag a
  // half-plan chain (N/2, N/4, ...) into the cache for plans that only
  // ever run complex transforms (e.g. Bluestein sub-plans, ACF sizes).
  mutable std::once_flag real_once_;
  mutable std::shared_ptr<const FftPlan> half_;  ///< cached plan for N/2
  mutable std::vector<Complex> real_twiddle_;    ///< exp(-2*pi*i*k/N), k<=N/2
};

/// Thread-safe LRU cache of FftPlans keyed by N. One global instance (see
/// plan_cache()) backs the fft/rfft/ifft free functions so that repeated
/// transforms of the same size reuse tables instead of recomputing them.
class PlanCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit PlanCache(std::size_t capacity = kDefaultCapacity);
  ~PlanCache();
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the plan for size n, constructing and caching it on a miss.
  /// The returned handle stays valid after eviction (shared ownership), so
  /// worker threads can hold a per-thread handle across a whole batch.
  std::shared_ptr<const FftPlan> get(std::size_t n);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;  ///< plans currently resident
  };
  Stats stats() const;

  std::size_t capacity() const;
  /// Resizes the cache, evicting least-recently-used plans if needed.
  void set_capacity(std::size_t capacity);
  /// Drops every cached plan and resets the stats counters.
  void clear();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The process-wide plan cache used by the fft/rfft/ifft free functions.
PlanCache& plan_cache();

/// Convenience: plan_cache().get(n).
std::shared_ptr<const FftPlan> get_plan(std::size_t n);

// ---------------------------------------------------------------------------
// Allocation-free transform entry points (plan-cached, scratch reused).
// out.size() must equal in.size(); results match the vector-returning
// fft/ifft/rfft free functions bit for bit.
// ---------------------------------------------------------------------------
void fft_into(std::span<const Complex> in, std::span<Complex> out);
void ifft_into(std::span<const Complex> in, std::span<Complex> out);
void rfft_into(std::span<const double> in, std::span<Complex> out);

}  // namespace ftio::signal
