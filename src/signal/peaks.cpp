#include "signal/peaks.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ftio::signal {

namespace {

/// Locates strict local maxima with SciPy's plateau handling: the peak is
/// the middle of any flat top whose neighbours on both sides are lower.
std::vector<std::size_t> local_maxima(std::span<const double> v) {
  std::vector<std::size_t> maxima;
  const std::size_t n = v.size();
  std::size_t i = 1;
  while (i + 1 < n) {
    if (v[i - 1] < v[i]) {
      std::size_t ahead = i + 1;
      while (ahead + 1 < n && v[ahead] == v[i]) ++ahead;
      if (v[ahead] < v[i]) {
        maxima.push_back((i + ahead - 1) / 2);
        i = ahead;
        continue;
      }
    }
    ++i;
  }
  return maxima;
}

double prominence_of(std::span<const double> v, std::size_t peak) {
  // Walk left/right until a sample higher than the peak (or the border),
  // tracking the lowest valley on each side; prominence = peak - max(valley).
  const double h = v[peak];
  double left_min = h;
  for (std::size_t i = peak; i-- > 0;) {
    if (v[i] > h) break;
    left_min = std::min(left_min, v[i]);
  }
  double right_min = h;
  for (std::size_t i = peak + 1; i < v.size(); ++i) {
    if (v[i] > h) break;
    right_min = std::min(right_min, v[i]);
  }
  return h - std::max(left_min, right_min);
}

}  // namespace

std::vector<Peak> find_peaks(std::span<const double> values,
                             const PeakOptions& options) {
  std::vector<Peak> peaks;
  if (values.size() < 3) return peaks;

  for (std::size_t idx : local_maxima(values)) {
    Peak p;
    p.index = idx;
    p.height = values[idx];
    peaks.push_back(p);
  }

  if (options.min_height) {
    std::erase_if(peaks,
                  [&](const Peak& p) { return p.height < *options.min_height; });
  }

  if (options.min_threshold) {
    std::erase_if(peaks, [&](const Peak& p) {
      const double left = p.height - values[p.index - 1];
      const double right = p.height - values[p.index + 1];
      return std::min(left, right) < *options.min_threshold;
    });
  }

  if (options.min_distance && *options.min_distance > 1) {
    // SciPy semantics: repeatedly keep the highest remaining peak and drop
    // all unkept peaks closer than `distance` samples.
    std::vector<std::size_t> order(peaks.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return peaks[a].height > peaks[b].height;
    });
    std::vector<bool> keep(peaks.size(), true);
    for (std::size_t rank : order) {
      if (!keep[rank]) continue;
      for (std::size_t j = 0; j < peaks.size(); ++j) {
        if (j == rank || !keep[j]) continue;
        const auto a = peaks[rank].index;
        const auto b = peaks[j].index;
        const std::size_t gap = a > b ? a - b : b - a;
        if (gap < *options.min_distance && peaks[j].height <= peaks[rank].height) {
          keep[j] = false;
        }
      }
    }
    std::vector<Peak> filtered;
    for (std::size_t i = 0; i < peaks.size(); ++i) {
      if (keep[i]) filtered.push_back(peaks[i]);
    }
    peaks = std::move(filtered);
  }

  for (auto& p : peaks) p.prominence = prominence_of(values, p.index);

  if (options.min_prominence) {
    std::erase_if(peaks, [&](const Peak& p) {
      return p.prominence < *options.min_prominence;
    });
  }

  return peaks;
}

}  // namespace ftio::signal
