#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <span>
#include <vector>

#include "signal/plan.hpp"
#include "util/parallel.hpp"

namespace ftio::signal::detail {

/// Shared orchestration of the batched signal-level consumers
/// (compute_spectra, autocorrelation_many): group indices [0, count) by
/// a transform size, run singleton groups through the per-signal path,
/// and split every larger group into cache-resident row tiles fanned
/// across up to `threads` workers, each tile executing one batched plan
/// run. Tile boundaries depend only on the index order within a group,
/// so results are independent of the thread count.
///
///   group_key(i)   -> the plan size this signal transforms at
///   run_single(i)  -> per-signal fallback for groups of one
///   run_tile(plan, tile_indices) -> batched execution of one tile;
///     `tile_indices` is the group's index list restricted to the tile
///
/// The plan is prepared for real input (both consumers run the packed
/// real path) before any tile runs, so workers never race on the lazy
/// table builds.
template <class KeyFn, class SingleFn, class TileFn>
void grouped_batch_tiles(std::size_t count, unsigned threads,
                         KeyFn&& group_key, SingleFn&& run_single,
                         TileFn&& run_tile) {
  std::map<std::size_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < count; ++i) {
    groups[group_key(i)].push_back(i);
  }
  for (const auto& [size, idx] : groups) {
    if (idx.size() == 1) {
      run_single(idx[0]);
      continue;
    }
    const auto plan = get_plan(size);
    plan->prepare(/*for_real_input=*/true);
    const std::size_t tile_rows =
        std::max<std::size_t>(std::size_t{1}, plan->batch_tile_rows(true));
    const std::size_t tiles = (idx.size() + tile_rows - 1) / tile_rows;
    ftio::util::parallel_for(
        tiles,
        [&](std::size_t t) {
          const std::size_t row0 = t * tile_rows;
          const std::size_t rows = std::min(tile_rows, idx.size() - row0);
          run_tile(*plan,
                   std::span<const std::size_t>(idx).subspan(row0, rows));
        },
        threads);
  }
}

}  // namespace ftio::signal::detail
