#include "signal/step_function.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contracts.hpp"
#include "util/error.hpp"

namespace ftio::signal {

StepFunction::StepFunction(std::vector<double> times,
                           std::vector<double> values)
    : times_(std::move(times)), values_(std::move(values)) {
  ftio::util::expect(times_.size() == values_.size() + 1,
                     "StepFunction: times must have values.size()+1 entries");
  for (std::size_t i = 1; i < times_.size(); ++i) {
    ftio::util::expect(times_[i] > times_[i - 1],
                       "StepFunction: times must be strictly increasing");
  }
}

std::size_t StepFunction::segment_index(double t) const {
  if (values_.empty() || t < times_.front() || t >= times_.back()) {
    return std::numeric_limits<std::size_t>::max();
  }
  // upper_bound returns the first boundary > t; the segment is one before.
  const auto it = std::upper_bound(times_.begin(), times_.end(), t);
  return static_cast<std::size_t>(it - times_.begin()) - 1;
}

double StepFunction::value_at(double t) const {
  const std::size_t idx = segment_index(t);
  if (idx == std::numeric_limits<std::size_t>::max()) return 0.0;
  return values_[idx];
}

double StepFunction::integral(double a, double b) const {
  if (values_.empty() || b <= a) return 0.0;
  const double lo = std::max(a, times_.front());
  const double hi = std::min(b, times_.back());
  if (hi <= lo) return 0.0;
  double acc = 0.0;
  const auto first = std::upper_bound(times_.begin(), times_.end(), lo);
  std::size_t i = static_cast<std::size_t>(first - times_.begin()) - 1;
  for (; i < values_.size() && times_[i] < hi; ++i) {
    const double seg_lo = std::max(lo, times_[i]);
    const double seg_hi = std::min(hi, times_[i + 1]);
    if (seg_hi > seg_lo) acc += values_[i] * (seg_hi - seg_lo);
  }
  return acc;
}

double StepFunction::total_integral() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) {
    acc += values_[i] * (times_[i + 1] - times_[i]);
  }
  return acc;
}

double StepFunction::max_value() const {
  if (values_.empty()) return 0.0;
  return *std::max_element(values_.begin(), values_.end());
}

void StepFunction::splice_tail(std::size_t keep_boundaries,
                               std::span<const double> new_times,
                               std::span<const double> new_values) {
  ftio::util::expect(keep_boundaries <= times_.size(),
                     "StepFunction::splice_tail: keep_boundaries too large");
  times_.resize(keep_boundaries);
  // Every kept boundary except a final one starts a kept segment.
  values_.resize(std::min(keep_boundaries, values_.size()));
  times_.insert(times_.end(), new_times.begin(), new_times.end());
  values_.insert(values_.end(), new_values.begin(), new_values.end());
  ftio::util::expect(times_.size() == values_.size() + 1,
                     "StepFunction::splice_tail: times/values size mismatch");
  const std::size_t first_new =
      keep_boundaries > 0 ? keep_boundaries : 1;
  for (std::size_t i = first_new; i < times_.size(); ++i) {
    ftio::util::expect(times_[i] > times_[i - 1],
                       "StepFunction::splice_tail: times must stay "
                       "strictly increasing");
  }
}

void StepFunction::trim_front(std::size_t drop_boundaries) {
  if (drop_boundaries == 0) return;
  ftio::util::expect(drop_boundaries < values_.size(),
                     "StepFunction::trim_front: at least one segment "
                     "must remain");
  times_.erase(times_.begin(),
               times_.begin() + static_cast<std::ptrdiff_t>(drop_boundaries));
  values_.erase(values_.begin(),
                values_.begin() + static_cast<std::ptrdiff_t>(drop_boundaries));
  // Mutation post-condition: the class invariant (one more boundary than
  // segments, strictly increasing boundaries) must survive every
  // in-place edit — a violation here is a library bug, not caller input.
  FTIO_ASSERT(times_.size() == values_.size() + 1);
  FTIO_ASSERT(times_.size() < 2 || times_.front() < times_[1]);
}

void StepFunction::shrink_to_fit() {
  if (times_.capacity() > 2 * times_.size()) times_.shrink_to_fit();
  if (values_.capacity() > 2 * values_.size()) values_.shrink_to_fit();
}

DiscretizedSignal discretize(const StepFunction& f, double fs,
                             SamplingMode mode) {
  ftio::util::expect(fs > 0.0, "discretize: fs must be positive");
  ftio::util::expect(!f.empty(), "discretize: empty signal");

  const double duration = f.duration();
  // Untrusted-input guard (see core::select_analysis_window): casting a
  // non-finite or overflowing sample count is undefined behaviour.
  const double scaled = duration * fs;
  ftio::util::expect(std::isfinite(scaled) && scaled < 9.0e15,
                     "discretize: sample count not representable "
                     "(non-finite or absurd duration * fs)");
  const auto n = static_cast<std::size_t>(std::ceil(scaled));
  ftio::util::expect(n > 0, "discretize: signal shorter than one sample");

  DiscretizedSignal d;
  d.sampling_frequency = fs;
  d.start_time = f.start_time();
  d.samples.resize(n);

  const double dt = 1.0 / fs;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = d.start_time + static_cast<double>(i) * dt;
    if (mode == SamplingMode::kPointSample) {
      d.samples[i] = f.value_at(t);
    } else {
      const double hi = std::min(t + dt, f.end_time());
      const double width = hi - t;
      d.samples[i] = width > 0.0 ? f.integral(t, hi) / width : 0.0;
    }
  }

  const double original_volume = f.total_integral();
  double discrete_volume = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = d.start_time + static_cast<double>(i) * dt;
    const double width = std::min(dt, f.end_time() - t);
    discrete_volume += d.samples[i] * std::max(width, 0.0);
  }
  d.abstraction_error =
      original_volume > 0.0
          ? std::abs(discrete_volume - original_volume) / original_volume
          : 0.0;
  return d;
}

}  // namespace ftio::signal
