#include "signal/autocorrelation.hpp"

#include <cmath>

#include "signal/fft.hpp"
#include "signal/plan.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

namespace {

std::vector<double> acf_impl(std::span<const double> samples, bool center) {
  ftio::util::expect(!samples.empty(), "autocorrelation: empty signal");
  const std::size_t n = samples.size();

  // Zero-pad to >= 2N to turn circular correlation into linear correlation.
  // The padded/spectrum buffers are per-thread scratch and the 2N-point
  // plan comes from the cache, so repeated ACF calls (the Sec. III-A
  // sweeps run thousands) neither reallocate nor recompute twiddles.
  const std::size_t m = next_power_of_two(2 * n);
  thread_local std::vector<Complex> padded;
  thread_local std::vector<Complex> spectrum;
  padded.assign(m, Complex(0.0, 0.0));
  const double mean = center ? ftio::util::mean(samples) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    padded[i] = Complex(samples[i] - mean, 0.0);
  }

  const auto plan = get_plan(m);
  spectrum.resize(m);
  plan->forward(padded, spectrum);
  for (auto& v : spectrum) v *= std::conj(v);
  plan->inverse(spectrum, padded);  // reuse padded as the correlation output

  std::vector<double> acf(n);
  const double lag0 = padded[0].real();
  if (lag0 == 0.0) {
    // All-zero (or mean-constant) signal: define ACF as 1 at lag 0.
    acf.assign(n, 0.0);
    acf[0] = 1.0;
    return acf;
  }
  for (std::size_t lag = 0; lag < n; ++lag) {
    acf[lag] = padded[lag].real() / lag0;
  }
  return acf;
}

}  // namespace

std::vector<double> autocorrelation(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/false);
}

std::vector<double> autocorrelation_centered(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/true);
}

}  // namespace ftio::signal
