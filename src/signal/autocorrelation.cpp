#include "signal/autocorrelation.hpp"

#include <cmath>

#include "signal/fft.hpp"
#include "signal/plan.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

namespace {

std::vector<double> acf_impl(std::span<const double> samples, bool center) {
  ftio::util::expect(!samples.empty(), "autocorrelation: empty signal");
  const std::size_t n = samples.size();

  // Zero-pad to >= 2N to turn circular correlation into linear correlation.
  // The signal is real, so the whole pipeline stays on the packed
  // single-sided planar layout: planar rfft -> |X_k|^2 over the M/2+1
  // bins -> planar real inverse. Both transforms are half-size, the
  // mirrored spectrum half is never materialised, and no interleaved
  // std::complex buffer exists anywhere on the path — the power loop is
  // two stride-1 double lanes the compiler vectorises. Buffers are
  // per-thread scratch and the M-point plan comes from the cache, so
  // repeated ACF calls (the Sec. III-A sweeps run thousands) neither
  // reallocate nor recompute twiddles.
  const std::size_t m = next_power_of_two(2 * n);
  thread_local std::vector<double> padded;
  thread_local std::vector<double> spec_re;
  thread_local std::vector<double> spec_im;
  padded.assign(m, 0.0);
  const double mean = center ? ftio::util::mean(samples) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    padded[i] = samples[i] - mean;
  }

  const auto plan = get_plan(m);
  spec_re.resize(m / 2 + 1);
  spec_im.resize(m / 2 + 1);
  plan->forward_real_half_planar(padded, spec_re, spec_im);
  // The power spectrum of a real signal is real and even, so its inverse
  // transform is again real: exactly the packed-inverse contract.
  for (std::size_t k = 0; k < spec_re.size(); ++k) {
    spec_re[k] = spec_re[k] * spec_re[k] + spec_im[k] * spec_im[k];
    spec_im[k] = 0.0;
  }
  plan->inverse_real_half_planar(spec_re, spec_im,
                                 padded);  // padded now holds the ACF

  std::vector<double> acf(n);
  const double lag0 = padded[0];
  if (lag0 == 0.0) {
    // All-zero (or mean-constant) signal: define ACF as 1 at lag 0.
    acf.assign(n, 0.0);
    acf[0] = 1.0;
    return acf;
  }
  for (std::size_t lag = 0; lag < n; ++lag) {
    acf[lag] = padded[lag] / lag0;
  }
  return acf;
}

}  // namespace

std::vector<double> autocorrelation(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/false);
}

std::vector<double> autocorrelation_centered(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/true);
}

}  // namespace ftio::signal
