#include "signal/autocorrelation.hpp"

#include <algorithm>
#include <cmath>

#include "signal/batch_util.hpp"
#include "signal/fft.hpp"
#include "signal/plan.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/stats.hpp"

namespace ftio::signal {

namespace {

/// |X_k|^2 into the re lane, im zeroed — the power spectrum of a real
/// signal is real and even, so its inverse transform is again real:
/// exactly the packed-inverse contract. Shared by the per-signal and
/// batched paths so both run the same instruction sequence (identical
/// doubles bit for bit).
void power_bins(double* __restrict re, double* __restrict im,
                std::size_t bins) {
  for (std::size_t k = 0; k < bins; ++k) {
    re[k] = re[k] * re[k] + im[k] * im[k];
    im[k] = 0.0;
  }
}

/// Lag-0 normalisation of a raw FFT autocorrelation (first n lags of the
/// padded buffer). Shared by the per-signal and batched paths.
std::vector<double> normalize_acf(const double* raw, std::size_t n) {
  std::vector<double> acf(n);
  const double lag0 = raw[0];
  if (lag0 == 0.0) {
    // All-zero (or mean-constant) signal: define ACF as 1 at lag 0.
    acf.assign(n, 0.0);
    acf[0] = 1.0;
    return acf;
  }
  for (std::size_t lag = 0; lag < n; ++lag) {
    acf[lag] = raw[lag] / lag0;
  }
  return acf;
}

std::vector<double> acf_impl(std::span<const double> samples, bool center) {
  ftio::util::expect(!samples.empty(), "autocorrelation: empty signal");
  const std::size_t n = samples.size();

  // Zero-pad to >= 2N to turn circular correlation into linear correlation.
  // The signal is real, so the whole pipeline stays on the packed
  // single-sided planar layout: planar rfft -> |X_k|^2 over the M/2+1
  // bins -> planar real inverse. Both transforms are half-size, the
  // mirrored spectrum half is never materialised, and no interleaved
  // std::complex buffer exists anywhere on the path — the power loop is
  // two stride-1 double lanes the compiler vectorises. Buffers are
  // per-thread scratch and the M-point plan comes from the cache, so
  // repeated ACF calls (the Sec. III-A sweeps run thousands) neither
  // reallocate nor recompute twiddles.
  const std::size_t m = next_power_of_two(2 * n);
  thread_local std::vector<double> padded;
  thread_local std::vector<double> spec_re;
  thread_local std::vector<double> spec_im;
  padded.assign(m, 0.0);
  const double mean = center ? ftio::util::mean(samples) : 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    padded[i] = samples[i] - mean;
  }

  const auto plan = get_plan(m);
  spec_re.resize(m / 2 + 1);
  spec_im.resize(m / 2 + 1);
  plan->forward_real_half_planar(padded, spec_re, spec_im);
  power_bins(spec_re.data(), spec_im.data(), spec_re.size());
  plan->inverse_real_half_planar(spec_re, spec_im,
                                 padded);  // padded now holds the ACF
  return normalize_acf(padded.data(), n);
}

}  // namespace

std::vector<double> autocorrelation(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/false);
}

std::vector<double> autocorrelation_centered(std::span<const double> samples) {
  return acf_impl(samples, /*center=*/true);
}

std::vector<std::vector<double>> autocorrelation_many(
    std::span<const std::span<const double>> signals, unsigned threads) {
  std::vector<std::vector<double>> out(signals.size());
  if (signals.empty()) return out;
  for (const auto& s : signals) {
    ftio::util::expect(!s.empty(), "autocorrelation_many: empty signal");
  }

  // Group the signals by their power-of-two convolution size (different
  // lengths can share one m = next_pow2(2n)): every group's forward and
  // inverse transforms run through the plan's stage-major batched
  // execution over cache-resident tiles, with the same zero-padding,
  // power, and normalisation steps as the per-signal path — out[i] is
  // bit-identical to autocorrelation(signals[i]).
  detail::grouped_batch_tiles(
      signals.size(), threads,
      [&](std::size_t i) { return next_power_of_two(2 * signals[i].size()); },
      [&](std::size_t i) { out[i] = autocorrelation(signals[i]); },
      [&](const FftPlan& plan, std::span<const std::size_t> tile) {
        const std::size_t m = plan.size();
        const std::size_t bins = m / 2 + 1;
        const std::size_t rows = tile.size();
        thread_local std::vector<double> padded_rows;
        thread_local std::vector<double> spec_re;
        thread_local std::vector<double> spec_im;
        padded_rows.assign(rows * m, 0.0);
        spec_re.resize(rows * bins);
        spec_im.resize(rows * bins);
        for (std::size_t r = 0; r < rows; ++r) {
          const auto& sig = signals[tile[r]];
          std::copy(sig.begin(), sig.end(),
                    padded_rows.begin() + static_cast<std::ptrdiff_t>(r * m));
        }
        plan.rfft_half_planar_batch_into(rows, m, padded_rows, bins,
                                         spec_re, spec_im);
        for (std::size_t r = 0; r < rows; ++r) {
          power_bins(spec_re.data() + r * bins, spec_im.data() + r * bins,
                     bins);
        }
        plan.irfft_half_planar_batch_into(rows, bins, spec_re, spec_im, m,
                                          padded_rows);
        for (std::size_t r = 0; r < rows; ++r) {
          out[tile[r]] =
              normalize_acf(padded_rows.data() + r * m,
                            signals[tile[r]].size());
        }
      });
  return out;
}

}  // namespace ftio::signal
