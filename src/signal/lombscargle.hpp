#pragma once

#include <span>
#include <vector>

namespace ftio::signal {

/// Lomb–Scargle periodogram of an irregularly sampled real signal
/// (Lomb 1976 / Scargle 1982, with the time-offset tau that makes the
/// estimate invariant to time-axis shifts):
///
///   P(w) = 1/2 * [ (sum y~ cos w(t - tau))^2 / sum cos^2 w(t - tau)
///                + (sum y~ sin w(t - tau))^2 / sum sin^2 w(t - tau) ],
///   tan(2 w tau) = sum sin(2 w t) / sum cos(2 w t),
///
/// where y~ are the mean-subtracted values. The mean is subtracted here,
/// so callers pass raw values. Evaluation is direct (one sin/cos pair per
/// point and frequency, O(points * frequencies)); the per-frequency sums
/// are rotated by tau analytically, so no per-point scratch is kept.
///
/// On a regular grid t_i = i/fs with frequencies at the Fourier bins
/// k*fs/N (k < N/2) this equals the classical periodogram |X_k|^2 / N of
/// the mean-subtracted signal — the property the detector tests pin. At
/// the even-N Nyquist bin the sine sums vanish and Lomb–Scargle reports
/// half the classical power (the cos/sin split is degenerate there).
///
/// `times` and `values` must have equal size; frequencies are in Hz and
/// must be positive (evaluating at 0 is degenerate: the DC component was
/// removed). Returns one power per frequency; sizes < 2 yield all zeros.
std::vector<double> lomb_scargle_power(std::span<const double> times,
                                       std::span<const double> values,
                                       std::span<const double> frequencies);

}  // namespace ftio::signal
