file(REMOVE_RECURSE
  "CMakeFiles/signal_fft_test.dir/tests/signal_fft_test.cpp.o"
  "CMakeFiles/signal_fft_test.dir/tests/signal_fft_test.cpp.o.d"
  "signal_fft_test"
  "signal_fft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_fft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
