file(REMOVE_RECURSE
  "CMakeFiles/util_codec_test.dir/tests/util_codec_test.cpp.o"
  "CMakeFiles/util_codec_test.dir/tests/util_codec_test.cpp.o.d"
  "util_codec_test"
  "util_codec_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
