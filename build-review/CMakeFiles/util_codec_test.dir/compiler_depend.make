# Empty compiler generated dependencies file for util_codec_test.
# This may be replaced when dependencies are built.
