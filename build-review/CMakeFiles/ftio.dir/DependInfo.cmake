
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acf_analysis.cpp" "CMakeFiles/ftio.dir/src/core/acf_analysis.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/acf_analysis.cpp.o.d"
  "/root/repo/src/core/candidates.cpp" "CMakeFiles/ftio.dir/src/core/candidates.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/candidates.cpp.o.d"
  "/root/repo/src/core/ftio.cpp" "CMakeFiles/ftio.dir/src/core/ftio.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/ftio.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "CMakeFiles/ftio.dir/src/core/metrics.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/metrics.cpp.o.d"
  "/root/repo/src/core/online.cpp" "CMakeFiles/ftio.dir/src/core/online.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/online.cpp.o.d"
  "/root/repo/src/core/per_rank.cpp" "CMakeFiles/ftio.dir/src/core/per_rank.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/per_rank.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "CMakeFiles/ftio.dir/src/core/profile.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/core/profile.cpp.o.d"
  "/root/repo/src/engine/engine.cpp" "CMakeFiles/ftio.dir/src/engine/engine.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/engine/engine.cpp.o.d"
  "/root/repo/src/engine/streaming.cpp" "CMakeFiles/ftio.dir/src/engine/streaming.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/engine/streaming.cpp.o.d"
  "/root/repo/src/mpisim/cluster.cpp" "CMakeFiles/ftio.dir/src/mpisim/cluster.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/mpisim/cluster.cpp.o.d"
  "/root/repo/src/mpisim/filesystem.cpp" "CMakeFiles/ftio.dir/src/mpisim/filesystem.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/mpisim/filesystem.cpp.o.d"
  "/root/repo/src/outlier/outlier.cpp" "CMakeFiles/ftio.dir/src/outlier/outlier.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/outlier/outlier.cpp.o.d"
  "/root/repo/src/sched/simulator.cpp" "CMakeFiles/ftio.dir/src/sched/simulator.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/sched/simulator.cpp.o.d"
  "/root/repo/src/signal/autocorrelation.cpp" "CMakeFiles/ftio.dir/src/signal/autocorrelation.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/autocorrelation.cpp.o.d"
  "/root/repo/src/signal/fft.cpp" "CMakeFiles/ftio.dir/src/signal/fft.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/fft.cpp.o.d"
  "/root/repo/src/signal/peaks.cpp" "CMakeFiles/ftio.dir/src/signal/peaks.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/peaks.cpp.o.d"
  "/root/repo/src/signal/plan.cpp" "CMakeFiles/ftio.dir/src/signal/plan.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/plan.cpp.o.d"
  "/root/repo/src/signal/spectrum.cpp" "CMakeFiles/ftio.dir/src/signal/spectrum.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/spectrum.cpp.o.d"
  "/root/repo/src/signal/step_function.cpp" "CMakeFiles/ftio.dir/src/signal/step_function.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/step_function.cpp.o.d"
  "/root/repo/src/signal/wavelet.cpp" "CMakeFiles/ftio.dir/src/signal/wavelet.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/signal/wavelet.cpp.o.d"
  "/root/repo/src/tmio/tracer.cpp" "CMakeFiles/ftio.dir/src/tmio/tracer.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/tmio/tracer.cpp.o.d"
  "/root/repo/src/trace/formats.cpp" "CMakeFiles/ftio.dir/src/trace/formats.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/trace/formats.cpp.o.d"
  "/root/repo/src/trace/model.cpp" "CMakeFiles/ftio.dir/src/trace/model.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/trace/model.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "CMakeFiles/ftio.dir/src/util/csv.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/csv.cpp.o.d"
  "/root/repo/src/util/json.cpp" "CMakeFiles/ftio.dir/src/util/json.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/json.cpp.o.d"
  "/root/repo/src/util/msgpack.cpp" "CMakeFiles/ftio.dir/src/util/msgpack.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/msgpack.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "CMakeFiles/ftio.dir/src/util/rng.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "CMakeFiles/ftio.dir/src/util/stats.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "CMakeFiles/ftio.dir/src/util/table.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/util/table.cpp.o.d"
  "/root/repo/src/workloads/apps.cpp" "CMakeFiles/ftio.dir/src/workloads/apps.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/workloads/apps.cpp.o.d"
  "/root/repo/src/workloads/ior.cpp" "CMakeFiles/ftio.dir/src/workloads/ior.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/workloads/ior.cpp.o.d"
  "/root/repo/src/workloads/phase_library.cpp" "CMakeFiles/ftio.dir/src/workloads/phase_library.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/workloads/phase_library.cpp.o.d"
  "/root/repo/src/workloads/semisynthetic.cpp" "CMakeFiles/ftio.dir/src/workloads/semisynthetic.cpp.o" "gcc" "CMakeFiles/ftio.dir/src/workloads/semisynthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
