file(REMOVE_RECURSE
  "libftio.a"
)
