# Empty dependencies file for ftio.
# This may be replaced when dependencies are built.
