# Empty compiler generated dependencies file for signal_plan_test.
# This may be replaced when dependencies are built.
