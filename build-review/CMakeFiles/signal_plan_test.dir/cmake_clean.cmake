file(REMOVE_RECURSE
  "CMakeFiles/signal_plan_test.dir/tests/signal_plan_test.cpp.o"
  "CMakeFiles/signal_plan_test.dir/tests/signal_plan_test.cpp.o.d"
  "signal_plan_test"
  "signal_plan_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
