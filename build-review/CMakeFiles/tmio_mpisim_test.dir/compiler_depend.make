# Empty compiler generated dependencies file for tmio_mpisim_test.
# This may be replaced when dependencies are built.
