file(REMOVE_RECURSE
  "CMakeFiles/tmio_mpisim_test.dir/tests/tmio_mpisim_test.cpp.o"
  "CMakeFiles/tmio_mpisim_test.dir/tests/tmio_mpisim_test.cpp.o.d"
  "tmio_mpisim_test"
  "tmio_mpisim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tmio_mpisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
