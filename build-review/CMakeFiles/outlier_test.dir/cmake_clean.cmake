file(REMOVE_RECURSE
  "CMakeFiles/outlier_test.dir/tests/outlier_test.cpp.o"
  "CMakeFiles/outlier_test.dir/tests/outlier_test.cpp.o.d"
  "outlier_test"
  "outlier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
