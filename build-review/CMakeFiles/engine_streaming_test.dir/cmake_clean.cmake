file(REMOVE_RECURSE
  "CMakeFiles/engine_streaming_test.dir/tests/engine_streaming_test.cpp.o"
  "CMakeFiles/engine_streaming_test.dir/tests/engine_streaming_test.cpp.o.d"
  "engine_streaming_test"
  "engine_streaming_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
