# Empty dependencies file for engine_streaming_test.
# This may be replaced when dependencies are built.
