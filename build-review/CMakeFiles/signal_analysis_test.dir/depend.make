# Empty dependencies file for signal_analysis_test.
# This may be replaced when dependencies are built.
