file(REMOVE_RECURSE
  "CMakeFiles/signal_analysis_test.dir/tests/signal_analysis_test.cpp.o"
  "CMakeFiles/signal_analysis_test.dir/tests/signal_analysis_test.cpp.o.d"
  "signal_analysis_test"
  "signal_analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signal_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
