file(REMOVE_RECURSE
  "CMakeFiles/core_dft_test.dir/tests/core_dft_test.cpp.o"
  "CMakeFiles/core_dft_test.dir/tests/core_dft_test.cpp.o.d"
  "core_dft_test"
  "core_dft_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_dft_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
