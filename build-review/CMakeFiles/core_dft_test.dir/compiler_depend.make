# Empty compiler generated dependencies file for core_dft_test.
# This may be replaced when dependencies are built.
