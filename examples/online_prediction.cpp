// Online prediction (Sec. II-D): a HACC-IO-like loop runs on the virtual
// cluster with the TMIO tracer attached in online mode; after every flush,
// the predictor re-evaluates the period from the data collected so far.
//
//   ./examples/online_prediction
//
// Demonstrates: mpisim::VirtualCluster + tmio::Tracer in online mode +
// engine::StreamingSession — the incremental, plan-cached successor of
// core::OnlinePredictor (bit-identical predictions, ~O(window) per flush)
// with an ensemble of window strategies evaluated in the same batch, and
// the DBSCAN merging of predictions into probability-weighted intervals.
// Compaction bounds the session's memory to the analysis window, and the
// triage filter bank answers steady flushes without the full spectral
// pipeline; both report their stats at the end.

#include <cstdio>

#include "engine/streaming.hpp"
#include "mpisim/cluster.hpp"
#include "tmio/tracer.hpp"

int main() {
  constexpr int kRanks = 16;
  constexpr int kLoops = 16;

  ftio::mpisim::FileSystemModel fs{32e9, 32e9, 2e9};
  ftio::mpisim::VirtualCluster cluster(kRanks, fs);
  ftio::tmio::Tracer tracer(kRanks, {.mode = ftio::tmio::Mode::kOnline,
                                     .app_name = "hacc-io-like"});
  cluster.attach_tracer(&tracer);

  ftio::engine::StreamingOptions streaming;
  streaming.online.base.sampling_frequency = 2.0;
  streaming.online.base.with_metrics = false;
  streaming.online.strategy = ftio::core::WindowStrategy::kAdaptive;
  streaming.online.adaptive_hits = 3;
  // Evaluate the fixed look-back rule next to the adaptive one; all
  // windows of a flush share one analyze_many batch. (A kGrowing member
  // would look back over the whole stream and pin eviction off.)
  streaming.ensemble = {ftio::core::WindowStrategy::kFixedLength};
  streaming.online.fixed_window = 30.0;
  // Bound session memory to the reachable look-back, and let the triage
  // filter bank skip the spectral pipeline while the period holds steady.
  streaming.compaction.enabled = true;
  streaming.triage.enabled = true;
  ftio::engine::StreamingSession session(streaming);

  std::printf("loop  flush@   window           prediction\n");

  // The HACC-IO pattern: compute, write, read, verify — flushed per loop.
  // (Sec. III-B: "at the end of each loop iteration, we added a single
  // line to flush the collected data out to the trace file".)
  for (int loop = 0; loop < kLoops; ++loop) {
    cluster.run([&](ftio::mpisim::RankEnv& env) {
      env.compute(loop == 0 ? 12.0 : 6.5);  // first phase delayed by init
      env.collective_write(2'000'000'000, 4);
      env.collective_read(2'000'000'000, 4);
      env.compute(0.3);  // verify
    });

    // The flush line of this loop: grab the records accumulated since the
    // previous flush, ship them to the trace sink, and feed the same
    // chunk to the session (flushing first would mark them as already
    // consumed and unflushed_chunk would come back empty).
    // A few flushes in, widen the detector set: Lomb–Scargle reads the
    // raw curve knots alongside the default {dft, acf} pair from the
    // next full analysis on. Swapping detectors is free at any flush
    // boundary — the incremental curve and sample caches carry over.
    // (Once the triage bank answers steady flushes, full analyses — and
    // with them the registry — only rerun on drift or cadence checks.)
    if (loop == 3) {
      ftio::core::DetectorSetOptions detectors;
      detectors.detectors = {{"dft", 1.0}, {"acf", 1.0},
                             {"lomb-scargle", 1.0}};
      session.set_detectors(std::move(detectors));
    }

    const auto chunk = tracer.unflushed_chunk();
    tracer.flush(chunk.end_time());
    session.ingest(chunk);
    const auto p = session.predict();
    if (p.found()) {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  period %.2f s (conf %.0f%%)\n",
                  loop, p.at_time, p.window_start, p.window_end, p.period(),
                  100.0 * p.refined_confidence);
    } else {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  no dominant frequency yet\n",
                  loop, p.at_time, p.window_start, p.window_end);
    }
  }

  // Per-detector votes behind the last full analysis: each selected
  // method's verdict, the triage bank's corroborate-only vote when it
  // held a stable estimate, and the weighted fusion over all of them.
  const auto& last_full = session.last_result();
  std::printf("\ndetector votes (last full analysis):\n");
  for (const auto& v : last_full.detector_verdicts) {
    const bool corroborate =
        (v.capabilities & ftio::core::kCapCorroborateOnly) != 0;
    if (v.found) {
      std::printf("  %-14s period %6.2f s  confidence %3.0f%%%s\n",
                  v.name.c_str(), v.period, 100.0 * v.confidence,
                  corroborate ? "  (corroborate-only)" : "");
    } else {
      std::printf("  %-14s no period\n", v.name.c_str());
    }
  }
  if (last_full.fused.found()) {
    std::printf("  fused: period %.2f s, confidence %.0f%%, agreement "
                "%.0f%% over %zu votes\n",
                last_full.fused.period, 100.0 * last_full.fused.confidence,
                100.0 * last_full.fused.agreement, last_full.fused.supporting);
  }

  std::printf("\nmerged frequency intervals (DBSCAN over predictions):\n");
  for (const auto& iv : session.merged_intervals()) {
    std::printf("  [%.4f, %.4f] Hz  center %.4f Hz (period %.2f s)  "
                "probability %.0f%%\n",
                iv.low, iv.high, iv.center, 1.0 / iv.center,
                100.0 * iv.probability);
  }

  auto strategy_name = [](ftio::core::WindowStrategy s) {
    switch (s) {
      case ftio::core::WindowStrategy::kGrowing: return "growing";
      case ftio::core::WindowStrategy::kAdaptive: return "adaptive";
      case ftio::core::WindowStrategy::kFixedLength: return "fixed-length";
    }
    return "unknown";
  };
  std::printf("\nensemble view (last prediction per window strategy):\n");
  for (std::size_t i = 0; i < streaming.ensemble.size(); ++i) {
    const auto& history = session.ensemble_history(i);
    if (history.empty()) continue;
    const auto& last = history.back();
    if (last.found()) {
      std::printf("  %-12s period %.2f s (conf %.0f%%)\n",
                  strategy_name(streaming.ensemble[i]), last.period(),
                  100.0 * last.refined_confidence);
    } else {
      std::printf("  %-12s no dominant frequency\n",
                  strategy_name(streaming.ensemble[i]));
    }
  }

  const auto& cs = session.compaction_stats();
  std::printf("\nsession memory: %zu bytes resident, curve support starts "
              "at %.1f s\n  %zu compactions evicted %zu events / %zu "
              "segments, %zu windows clamped\n",
              session.memory_bytes(), cs.retained_start, cs.compactions,
              cs.evicted_events, cs.evicted_segments, cs.clamped_windows);

  const auto& ts = session.triage_stats();
  const auto est = session.triage_estimate();
  std::printf("triage: %zu full analyses, %zu skipped (drift %zu, "
              "confidence %zu, cadence %zu retriggers)\n",
              ts.full_analyses, ts.skipped, ts.drift_retriggers,
              ts.confidence_retriggers, ts.cadence_retriggers);
  if (est.valid()) {
    std::printf("  filter bank: period %.2f s at %.0f%% confidence after "
                "%zu observations\n",
                est.period, 100.0 * est.confidence, est.observations);
  }

  const auto overhead = tracer.overhead();
  std::printf("\ntracer overhead: %llu records in %.3f ms, %llu flushes in "
              "%.3f ms\n",
              static_cast<unsigned long long>(overhead.record_count),
              1e3 * overhead.record_seconds,
              static_cast<unsigned long long>(overhead.flush_count),
              1e3 * overhead.flush_seconds);
  return 0;
}
