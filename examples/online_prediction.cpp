// Online prediction (Sec. II-D): a HACC-IO-like loop runs on the virtual
// cluster with the TMIO tracer attached in online mode; after every flush,
// the predictor re-evaluates the period from the data collected so far.
//
//   ./examples/online_prediction
//
// Demonstrates: mpisim::VirtualCluster + tmio::Tracer in online mode +
// core::OnlinePredictor with the adaptive time window, and the DBSCAN
// merging of predictions into probability-weighted frequency intervals.

#include <cstdio>

#include "core/online.hpp"
#include "mpisim/cluster.hpp"
#include "tmio/tracer.hpp"

int main() {
  constexpr int kRanks = 16;
  constexpr int kLoops = 10;

  ftio::mpisim::FileSystemModel fs{32e9, 32e9, 2e9};
  ftio::mpisim::VirtualCluster cluster(kRanks, fs);
  ftio::tmio::Tracer tracer(kRanks, {.mode = ftio::tmio::Mode::kOnline,
                                     .app_name = "hacc-io-like"});
  cluster.attach_tracer(&tracer);

  ftio::core::OnlineOptions online;
  online.base.sampling_frequency = 2.0;
  online.base.with_metrics = false;
  online.strategy = ftio::core::WindowStrategy::kAdaptive;
  online.adaptive_hits = 3;
  ftio::core::OnlinePredictor predictor(online);

  std::printf("loop  flush@   window           prediction\n");

  // The HACC-IO pattern: compute, write, read, verify — flushed per loop.
  // (Sec. III-B: "at the end of each loop iteration, we added a single
  // line to flush the collected data out to the trace file".)
  for (int loop = 0; loop < kLoops; ++loop) {
    cluster.run([&](ftio::mpisim::RankEnv& env) {
      env.compute(loop == 0 ? 12.0 : 6.5);  // first phase delayed by init
      env.collective_write(2'000'000'000, 4);
      env.collective_read(2'000'000'000, 4);
      env.compute(0.3);  // verify
      env.flush();
    });

    // Feed the freshly flushed chunk to the predictor, then predict.
    predictor.ingest(tracer.unflushed_chunk());
    const auto p = predictor.predict();
    if (p.found()) {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  period %.2f s (conf %.0f%%)\n",
                  loop, p.at_time, p.window_start, p.window_end, p.period(),
                  100.0 * p.refined_confidence);
    } else {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  no dominant frequency yet\n",
                  loop, p.at_time, p.window_start, p.window_end);
    }
  }

  std::printf("\nmerged frequency intervals (DBSCAN over predictions):\n");
  for (const auto& iv : predictor.merged_intervals()) {
    std::printf("  [%.4f, %.4f] Hz  center %.4f Hz (period %.2f s)  "
                "probability %.0f%%\n",
                iv.low, iv.high, iv.center, 1.0 / iv.center,
                100.0 * iv.probability);
  }

  const auto overhead = tracer.overhead();
  std::printf("\ntracer overhead: %llu records in %.3f ms, %llu flushes in "
              "%.3f ms\n",
              static_cast<unsigned long long>(overhead.record_count),
              1e3 * overhead.record_seconds,
              static_cast<unsigned long long>(overhead.flush_count),
              1e3 * overhead.flush_seconds);
  return 0;
}
