// Online prediction (Sec. II-D): a HACC-IO-like loop runs on the virtual
// cluster with the TMIO tracer attached in online mode; after every flush,
// the predictor re-evaluates the period from the data collected so far.
//
//   ./examples/online_prediction
//
// Demonstrates: mpisim::VirtualCluster + tmio::Tracer in online mode +
// engine::StreamingSession — the incremental, plan-cached successor of
// core::OnlinePredictor (bit-identical predictions, ~O(window) per flush)
// with an ensemble of window strategies evaluated in the same batch, and
// the DBSCAN merging of predictions into probability-weighted intervals.
// Compaction bounds the session's memory to the analysis window, and the
// triage filter bank answers steady flushes without the full spectral
// pipeline; both report their stats at the end.

#include <cstdio>

#include "engine/streaming.hpp"
#include "mpisim/cluster.hpp"
#include "tmio/tracer.hpp"

int main() {
  constexpr int kRanks = 16;
  constexpr int kLoops = 16;

  ftio::mpisim::FileSystemModel fs{32e9, 32e9, 2e9};
  ftio::mpisim::VirtualCluster cluster(kRanks, fs);
  ftio::tmio::Tracer tracer(kRanks, {.mode = ftio::tmio::Mode::kOnline,
                                     .app_name = "hacc-io-like"});
  cluster.attach_tracer(&tracer);

  ftio::engine::StreamingOptions streaming;
  streaming.online.base.sampling_frequency = 2.0;
  streaming.online.base.with_metrics = false;
  streaming.online.strategy = ftio::core::WindowStrategy::kAdaptive;
  streaming.online.adaptive_hits = 3;
  // Evaluate the fixed look-back rule next to the adaptive one; all
  // windows of a flush share one analyze_many batch. (A kGrowing member
  // would look back over the whole stream and pin eviction off.)
  streaming.ensemble = {ftio::core::WindowStrategy::kFixedLength};
  streaming.online.fixed_window = 30.0;
  // Bound session memory to the reachable look-back, and let the triage
  // filter bank skip the spectral pipeline while the period holds steady.
  streaming.compaction.enabled = true;
  streaming.triage.enabled = true;
  ftio::engine::StreamingSession session(streaming);

  std::printf("loop  flush@   window           prediction\n");

  // The HACC-IO pattern: compute, write, read, verify — flushed per loop.
  // (Sec. III-B: "at the end of each loop iteration, we added a single
  // line to flush the collected data out to the trace file".)
  for (int loop = 0; loop < kLoops; ++loop) {
    cluster.run([&](ftio::mpisim::RankEnv& env) {
      env.compute(loop == 0 ? 12.0 : 6.5);  // first phase delayed by init
      env.collective_write(2'000'000'000, 4);
      env.collective_read(2'000'000'000, 4);
      env.compute(0.3);  // verify
    });

    // The flush line of this loop: grab the records accumulated since the
    // previous flush, ship them to the trace sink, and feed the same
    // chunk to the session (flushing first would mark them as already
    // consumed and unflushed_chunk would come back empty).
    const auto chunk = tracer.unflushed_chunk();
    tracer.flush(chunk.end_time());
    session.ingest(chunk);
    const auto p = session.predict();
    if (p.found()) {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  period %.2f s (conf %.0f%%)\n",
                  loop, p.at_time, p.window_start, p.window_end, p.period(),
                  100.0 * p.refined_confidence);
    } else {
      std::printf("%4d  %6.1fs  [%6.1f, %6.1f]  no dominant frequency yet\n",
                  loop, p.at_time, p.window_start, p.window_end);
    }
  }

  std::printf("\nmerged frequency intervals (DBSCAN over predictions):\n");
  for (const auto& iv : session.merged_intervals()) {
    std::printf("  [%.4f, %.4f] Hz  center %.4f Hz (period %.2f s)  "
                "probability %.0f%%\n",
                iv.low, iv.high, iv.center, 1.0 / iv.center,
                100.0 * iv.probability);
  }

  auto strategy_name = [](ftio::core::WindowStrategy s) {
    switch (s) {
      case ftio::core::WindowStrategy::kGrowing: return "growing";
      case ftio::core::WindowStrategy::kAdaptive: return "adaptive";
      case ftio::core::WindowStrategy::kFixedLength: return "fixed-length";
    }
    return "unknown";
  };
  std::printf("\nensemble view (last prediction per window strategy):\n");
  for (std::size_t i = 0; i < streaming.ensemble.size(); ++i) {
    const auto& history = session.ensemble_history(i);
    if (history.empty()) continue;
    const auto& last = history.back();
    if (last.found()) {
      std::printf("  %-12s period %.2f s (conf %.0f%%)\n",
                  strategy_name(streaming.ensemble[i]), last.period(),
                  100.0 * last.refined_confidence);
    } else {
      std::printf("  %-12s no dominant frequency\n",
                  strategy_name(streaming.ensemble[i]));
    }
  }

  const auto& cs = session.compaction_stats();
  std::printf("\nsession memory: %zu bytes resident, curve support starts "
              "at %.1f s\n  %zu compactions evicted %zu events / %zu "
              "segments, %zu windows clamped\n",
              session.memory_bytes(), cs.retained_start, cs.compactions,
              cs.evicted_events, cs.evicted_segments, cs.clamped_windows);

  const auto& ts = session.triage_stats();
  const auto est = session.triage_estimate();
  std::printf("triage: %zu full analyses, %zu skipped (drift %zu, "
              "confidence %zu, cadence %zu retriggers)\n",
              ts.full_analyses, ts.skipped, ts.drift_retriggers,
              ts.confidence_retriggers, ts.cadence_retriggers);
  if (est.valid()) {
    std::printf("  filter bank: period %.2f s at %.0f%% confidence after "
                "%zu observations\n",
                est.period, 100.0 * est.confidence, est.observations);
  }

  const auto overhead = tracer.overhead();
  std::printf("\ntracer overhead: %llu records in %.3f ms, %llu flushes in "
              "%.3f ms\n",
              static_cast<unsigned long long>(overhead.record_count),
              1e3 * overhead.record_seconds,
              static_cast<unsigned long long>(overhead.flush_count),
              1e3 * overhead.flush_seconds);
  return 0;
}
