// Trace format conversion tool: TMIO JSONL <-> MessagePack <-> Recorder
// CSV, with a summary of the trace content. Handy for feeding traces from
// one tool into another (Sec. II-A: TMIO "could easily be replaced by
// other tools and data sources").
//
//   ./examples/trace_convert <input> <output>
//
// Formats are inferred from the file extension:
//   .jsonl -> TMIO JSON Lines     .msgpack -> TMIO MessagePack
//   .csv   -> Recorder-like CSV
// Run with no arguments for a self-demonstration on a generated trace.

#include <cstdio>
#include <filesystem>
#include <string>

#include "trace/formats.hpp"
#include "util/error.hpp"
#include "util/file.hpp"
#include "workloads/ior.hpp"

namespace {

using ftio::trace::Trace;

Trace read_any(const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  if (ext == ".jsonl") {
    return ftio::trace::from_jsonl(ftio::util::read_text_file(path));
  }
  if (ext == ".msgpack") {
    return ftio::trace::from_msgpack(ftio::util::read_binary_file(path));
  }
  if (ext == ".csv") {
    return ftio::trace::from_recorder_csv(ftio::util::read_text_file(path));
  }
  throw ftio::util::InvalidArgument("unknown input extension: " + ext);
}

void write_any(const Trace& trace, const std::filesystem::path& path) {
  const auto ext = path.extension().string();
  if (ext == ".jsonl") {
    ftio::util::write_file_atomic(path, ftio::trace::to_jsonl(trace));
  } else if (ext == ".msgpack") {
    ftio::util::write_file_atomic(path, ftio::trace::to_msgpack(trace));
  } else if (ext == ".csv") {
    ftio::util::write_file_atomic(path, ftio::trace::to_recorder_csv(trace));
  } else {
    throw ftio::util::InvalidArgument("unknown output extension: " + ext);
  }
}

void summarize(const Trace& trace, const char* label) {
  std::printf("%s: app=%s ranks=%d requests=%zu span=[%.2f, %.2f]s "
              "volume=%.2f GB\n",
              label, trace.app.c_str(), trace.rank_count,
              trace.requests.size(), trace.begin_time(), trace.end_time(),
              static_cast<double>(trace.total_bytes()) / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    const auto trace = read_any(argv[1]);
    summarize(trace, "input");
    write_any(trace, argv[2]);
    std::printf("wrote %s\n", argv[2]);
    return 0;
  }

  // Self-demonstration: generate, convert through all three formats, and
  // verify the round trip preserves the request stream.
  const auto dir = std::filesystem::temp_directory_path();
  ftio::workloads::IorConfig config;
  config.ranks = 8;
  config.iterations = 4;
  const auto trace = ftio::workloads::generate_ior_trace(config);
  summarize(trace, "generated");

  const auto jsonl = dir / "demo.jsonl";
  const auto msgpack = dir / "demo.msgpack";
  const auto csv = dir / "demo.csv";
  write_any(trace, jsonl);
  write_any(read_any(jsonl), msgpack);
  write_any(read_any(msgpack), csv);
  const auto back = read_any(csv);
  summarize(back, "after jsonl->msgpack->csv");

  std::printf("sizes: jsonl=%zu msgpack=%zu csv=%zu bytes\n",
              std::filesystem::file_size(jsonl),
              std::filesystem::file_size(msgpack),
              std::filesystem::file_size(csv));
  return 0;
}
