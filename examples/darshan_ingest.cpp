// Compatibility with other tools (Sec. III-B b): FTIO can consume a
// Darshan-like heatmap instead of a TMIO trace. This example writes a
// synthetic Nek5000 heatmap CSV, reads it back, and analyses it with two
// time windows — reproducing the Fig. 11 lesson that shrinking dt turns
// an apparently aperiodic profile into a clean 4642 s period.
//
//   ./examples/darshan_ingest [heatmap.csv]

#include <cstdio>
#include <filesystem>

#include "core/ftio.hpp"
#include "trace/formats.hpp"
#include "util/file.hpp"
#include "workloads/apps.hpp"

int main(int argc, char** argv) {
  const std::filesystem::path path =
      argc > 1 ? argv[1]
               : std::filesystem::temp_directory_path() / "nek5000_heatmap.csv";

  // Fabricate the profile (a real deployment would export this from
  // pyDarshan); then treat the CSV file as the only data source.
  {
    const auto heatmap = ftio::workloads::generate_nek5000_heatmap();
    ftio::util::write_file_atomic(path, ftio::trace::to_heatmap_csv(heatmap));
    std::printf("wrote %s\n", path.c_str());
  }

  const auto heatmap =
      ftio::trace::from_heatmap_csv(ftio::util::read_text_file(path));
  std::printf("heatmap: app=%s bins=%zu bin_width=%.0fs duration=%.0fs\n",
              heatmap.app.c_str(), heatmap.bytes_per_bin.size(),
              heatmap.bin_width, heatmap.duration());

  // FTIO derives the sampling frequency from the bin width (Sec. III-B:
  // "automatically set the sampling frequency to the bin widths").
  ftio::core::FtioOptions options;
  options.sampling_frequency = heatmap.implied_sampling_frequency();
  options.sampling_mode = ftio::signal::SamplingMode::kBinAverage;
  std::printf("derived fs = %.5f Hz\n\n", options.sampling_frequency);

  const auto bandwidth = heatmap.bandwidth();

  // Full window: the irregular 30 GB phases spoil the periodicity.
  const auto full = ftio::core::analyze_bandwidth(bandwidth, options);
  std::printf("full window (dt = %.0f s): %s\n", heatmap.duration(),
              ftio::core::periodicity_name(full.dft.verdict));

  // Reduced window dt = 56,000 s: the checkpoint cadence emerges.
  options.window_end = 56'000.0;
  const auto reduced = ftio::core::analyze_bandwidth(bandwidth, options);
  std::printf("reduced window (dt = 56000 s): %s",
              ftio::core::periodicity_name(reduced.dft.verdict));
  if (reduced.periodic()) {
    std::printf(", period %.1f s (confidence %.1f%%)",
                reduced.period(), 100.0 * reduced.confidence());
  }
  std::printf("\n(paper: 4642.1 s with 85.4%% confidence)\n");
  return 0;
}
