// I/O scheduling use case (Sec. IV): the Set-10 heuristic fed by FTIO
// periods on a small job mix, compared against plain fair sharing.
//
//   ./examples/io_scheduling
//
// Demonstrates: sched::simulate with the three period sources and the
// stretch / I/O-slowdown / utilization metrics of Fig. 17.

#include <cstdio>

#include "sched/simulator.hpp"

namespace {

void report(const char* label, const ftio::sched::SimulationOutcome& out) {
  std::printf("%-18s stretch %.3f   io-slowdown %.3f   utilization %.1f%%   "
              "makespan %.0f s\n",
              label, out.stretch_geomean, out.io_slowdown_geomean,
              100.0 * out.utilization, out.makespan);
}

}  // namespace

int main() {
  const double fs_bandwidth = 10e9;
  const auto jobs = ftio::sched::make_set10_workload(fs_bandwidth, /*seed=*/7);
  std::printf("workload: %zu jobs (1 high-frequency, 15 low-frequency), "
              "PFS at %.0f GB/s\n\n",
              jobs.size(), fs_bandwidth / 1e9);

  ftio::sched::SchedulerConfig config;
  config.fs_bandwidth = fs_bandwidth;
  config.per_job_bandwidth = fs_bandwidth;
  config.ftio.sampling_frequency = 1.0;
  config.ftio.with_metrics = false;
  config.ftio.with_autocorrelation = false;

  // Original: the unmodified file system (max-min fair sharing).
  config.policy = ftio::sched::Policy::kFairShare;
  config.period_source = ftio::sched::PeriodSource::kNone;
  report("original", ftio::sched::simulate(jobs, config));

  // Set-10 with perfect (clairvoyant) period knowledge.
  config.policy = ftio::sched::Policy::kSet10;
  config.period_source = ftio::sched::PeriodSource::kClairvoyant;
  report("set-10 + clairv.", ftio::sched::simulate(jobs, config));

  // Set-10 fed by online FTIO predictions.
  config.period_source = ftio::sched::PeriodSource::kFtio;
  report("set-10 + ftio", ftio::sched::simulate(jobs, config));

  // Set-10 fed by FTIO predictions corrupted by +-50%.
  config.period_source = ftio::sched::PeriodSource::kFtioWithError;
  report("set-10 + error", ftio::sched::simulate(jobs, config));

  std::printf("\nlower stretch/slowdown and higher utilization are better;\n"
              "the paper's Fig. 17 shows FTIO within a few percent of the\n"
              "clairvoyant scheduler and far ahead of the original system.\n");
  return 0;
}
