// Per-process analysis (Sec. VI: "there are use cases (e.g., cache
// management) which require knowing the behavior of individual
// processes"): an application whose ranks follow different I/O cadences —
// periodic checkpointers plus one logger — analysed rank by rank, then as
// an aggregate, plus the wavelet view that localises a mid-run change.
// The per-rank bandwidth curves and the aggregate trace all go through
// one engine::analyze_many batch.
//
//   ./examples/per_rank_analysis

#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/ftio.hpp"
#include "engine/engine.hpp"
#include "signal/wavelet.hpp"
#include "trace/model.hpp"

int main() {
  ftio::trace::Trace t;
  t.rank_count = 4;
  // Ranks 0-1: checkpoints every 20 s; rank 2: telemetry every 7 s;
  // rank 3: a log writer with no structure.
  for (int p = 0; p < 30; ++p) {
    for (int r = 0; r < 2; ++r) {
      t.requests.push_back({r, p * 20.0, p * 20.0 + 2.5, 200'000'000,
                            ftio::trace::IoKind::kWrite});
    }
  }
  for (int p = 0; p < 85; ++p) {
    t.requests.push_back({2, p * 7.0, p * 7.0 + 1.0, 20'000'000,
                          ftio::trace::IoKind::kWrite});
  }
  for (int p = 0; p < 120; ++p) {
    const double start = p * 5.0 + (p % 7) * 0.6;
    t.requests.push_back({3, start, start + 0.4, 500'000,
                          ftio::trace::IoKind::kWrite});
  }

  ftio::core::FtioOptions opts;
  opts.sampling_frequency = 2.0;
  opts.with_metrics = false;

  // One batch: the four per-rank bandwidth curves plus the aggregate
  // trace, fanned across worker threads with shared FFT plans. This
  // spells out the view-building that core::detect_per_rank (the
  // canonical per-rank helper) does internally, to show the raw engine
  // API; prefer detect_per_rank when you don't need the aggregate in the
  // same batch.
  std::vector<ftio::signal::StepFunction> rank_signals;
  rank_signals.reserve(static_cast<std::size_t>(t.rank_count));
  ftio::trace::BandwidthOptions bw;
  bw.kind = opts.kind;  // keep the direction filter consistent per rank
  for (int rank = 0; rank < t.rank_count; ++rank) {
    rank_signals.push_back(ftio::trace::rank_bandwidth_signal(t, rank, bw));
  }
  std::vector<ftio::engine::TraceView> views;
  std::vector<std::size_t> view_of_rank(rank_signals.size(), SIZE_MAX);
  for (std::size_t i = 0; i < rank_signals.size(); ++i) {
    if (rank_signals[i].empty()) continue;  // rank never did I/O
    view_of_rank[i] = views.size();
    views.push_back(ftio::engine::TraceView::of(rank_signals[i]));
  }
  views.push_back(ftio::engine::TraceView::of(t));
  const auto batch = ftio::engine::analyze_many(views, opts);

  std::printf("per-rank view:\n");
  for (int rank = 0; rank < t.rank_count; ++rank) {
    const std::size_t slot = view_of_rank[static_cast<std::size_t>(rank)];
    if (slot == SIZE_MAX) {
      std::printf("  rank %d: no I/O\n", rank);
      continue;
    }
    const auto& r = batch[slot];
    if (r.periodic()) {
      std::printf("  rank %d: period %.2f s (confidence %.0f%%)\n", rank,
                  r.period(), 100.0 * r.refined_confidence);
    } else {
      std::printf("  rank %d: %s\n", rank,
                  ftio::core::periodicity_name(r.dft.verdict));
    }
  }

  const auto& aggregate = batch.back();
  std::printf("\naggregate view: %s",
              ftio::core::periodicity_name(aggregate.dft.verdict));
  if (aggregate.periodic()) {
    std::printf(", period %.2f s (confidence %.0f%%)",
                aggregate.period(), 100.0 * aggregate.refined_confidence);
  }
  std::printf("\n(the checkpoint cadence dominates; the logger is noise "
              "below the V/L threshold)\n");

  // Detector registry view: the same aggregate through the full detector
  // set — one verdict per method, then the weighted fusion the default
  // {dft, acf} pair is a special case of.
  ftio::core::FtioOptions reg_opts = opts;
  reg_opts.detectors.detectors = {{"dft", 1.0},
                                  {"acf", 1.0},
                                  {"autoperiod", 1.0},
                                  {"cfd-autoperiod", 1.0},
                                  {"lomb-scargle", 1.0}};
  const auto full = ftio::core::detect(t, reg_opts);
  std::printf("\ndetector votes on the aggregate:\n");
  for (const auto& v : full.detector_verdicts) {
    const bool corroborate =
        (v.capabilities & ftio::core::kCapCorroborateOnly) != 0;
    if (v.found) {
      std::printf("  %-15s period %6.2f s  confidence %3.0f%%%s\n",
                  v.name.c_str(), v.period, 100.0 * v.confidence,
                  corroborate ? "  (corroborate-only)" : "");
    } else {
      std::printf("  %-15s no period\n", v.name.c_str());
    }
  }
  if (full.fused.found()) {
    std::printf("  fused: period %.2f s, confidence %.0f%%, "
                "agreement %.0f%% over %zu votes\n",
                full.fused.period, 100.0 * full.fused.confidence,
                100.0 * full.fused.agreement, full.fused.supporting);
  } else {
    std::printf("  fused: no periodic verdict\n");
  }

  // Wavelet: when does rank 2's telemetry cadence change? Replace its
  // post-400 s stream with a half-rate one and inspect the scalogram.
  ftio::trace::Trace switched = t;
  std::erase_if(switched.requests, [](const ftio::trace::IoRequest& r) {
    return r.rank == 2 && r.start > 400.0;
  });
  for (int p = 0; p < 15; ++p) {
    switched.requests.push_back({2, 406.0 + p * 14.0, 406.0 + p * 14.0 + 1.0,
                                 20'000'000, ftio::trace::IoKind::kWrite});
  }
  const auto rank2 = ftio::trace::rank_bandwidth_signal(switched, 2);
  const auto d = ftio::signal::discretize(rank2, 2.0);
  const auto freqs = ftio::signal::log_spaced_frequencies(0.02, 0.5, 24);
  const auto cwt = ftio::signal::morlet_cwt(d.samples, 2.0, freqs);
  const auto change = ftio::signal::strongest_change_point(cwt, 120);
  if (change) {
    std::printf("\nwavelet view of rank 2 (cadence halves at 400 s): "
                "strongest change at t = %.0f s\n",
                static_cast<double>(*change) / 2.0);
  } else {
    std::printf("\nwavelet view of rank 2: no cadence change detected\n");
  }
  return 0;
}
