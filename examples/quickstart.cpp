// Quickstart: generate a periodic I/O trace, run FTIO on it, and print the
// detected period with its confidence metrics.
//
//   ./examples/quickstart
//
// This is the 60-second tour of the public API: a workload generator
// produces a request trace (the data TMIO would record on a real system),
// core::detect runs the Sec. II pipeline, and the result carries the
// dominant frequency, the confidence, and the characterization metrics.

#include <cstdio>

#include "core/ftio.hpp"
#include "workloads/ior.hpp"

int main() {
  // An IOR-like run: 32 ranks, 8 iterations, one I/O phase every ~50 s.
  // The file-system model is slowed to a contended 20 MB/s per rank so
  // each phase lasts a few seconds — comfortably above the sampling grid,
  // per the paper's Sec. II-E guidance.
  ftio::workloads::IorConfig config;
  config.ranks = 32;
  config.iterations = 8;
  config.compute_seconds = 50.0;
  config.block_size = 30 << 20;
  config.filesystem = ftio::mpisim::FileSystemModel::plafrim();
  config.filesystem.per_rank_bandwidth = 20e6;
  const auto trace = ftio::workloads::generate_ior_trace(config);

  std::printf("trace: %s, %d ranks, %zu requests, %.1f s, %.2f GB\n",
              trace.app.c_str(), trace.rank_count, trace.requests.size(),
              trace.duration(),
              static_cast<double>(trace.total_bytes()) / 1e9);

  // Run FTIO in offline detection mode.
  ftio::core::FtioOptions options;
  options.sampling_frequency = 10.0;  // Hz
  const auto result = ftio::core::detect(trace, options);

  std::printf("\nFTIO result\n");
  std::printf("  verdict          : %s\n",
              ftio::core::periodicity_name(result.dft.verdict));
  if (result.periodic()) {
    std::printf("  dominant freq    : %.4f Hz\n", result.frequency());
    std::printf("  period           : %.2f s\n", result.period());
    std::printf("  confidence (DFT) : %.1f%%\n", 100.0 * result.dft.confidence);
    std::printf("  refined conf.    : %.1f%%\n",
                100.0 * result.refined_confidence);
  }
  std::printf("  samples          : %zu at %.1f Hz\n", result.sample_count,
              result.sampling_frequency);
  std::printf("  abstraction error: %.4f\n", result.abstraction_error);

  if (result.acf && result.acf->found()) {
    std::printf("  ACF period       : %.2f s (confidence %.1f%%)\n",
                result.acf->period, 100.0 * result.acf->confidence);
  }
  if (result.metrics) {
    const auto& m = *result.metrics;
    std::printf("\ncharacterization (Sec. II-C)\n");
    std::printf("  sigma_vol        : %.3f\n", m.sigma_vol);
    std::printf("  sigma_time       : %.3f\n", m.sigma_time);
    std::printf("  R_IO             : %.3f\n", m.time_ratio_io);
    std::printf("  B_IO             : %.2f GB/s\n",
                m.substantial_bandwidth / 1e9);
    std::printf("  periodicity score: %.2f\n", m.periodicity_score());
    std::printf("  bytes per period : %.2f GB\n", m.bytes_per_period / 1e9);
  }
  return 0;
}
