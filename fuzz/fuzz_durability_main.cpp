#include <cstddef>
#include <cstdint>

#include "fuzz/harness_durability.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ftio::fuzz::ftio_fuzz_durability(data, size);
}
