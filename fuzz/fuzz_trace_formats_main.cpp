// libFuzzer entry point for the trace-format harness. Kept in its own
// translation unit so the replay driver can link both harnesses into one
// binary without colliding LLVMFuzzerTestOneInput definitions.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness_trace_formats.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ftio::fuzz::ftio_fuzz_trace_formats(data, size);
}
