#include "fuzz/harness_durability.hpp"

#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "durability/checkpoint.hpp"
#include "durability/durability.hpp"
#include "durability/journal.hpp"
#include "engine/streaming.hpp"
#include "trace/model.hpp"
#include "util/error.hpp"

namespace ftio::fuzz {

namespace {

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_durability: %s\n", what);
  std::abort();
}

/// The session posture recovery restores into: the stateful tiers on,
/// tiny engine, so the decoder walks every section of the format.
ftio::engine::StreamingOptions session_options() {
  ftio::engine::StreamingOptions options;
  options.online.base.sampling_frequency = 2.0;
  options.online.base.with_metrics = false;
  options.compaction.enabled = true;
  options.compaction.max_history = 8;
  options.triage.enabled = true;
  options.engine.threads = 1;
  return options;
}

/// restore_state over arbitrary bytes: ParseError or a working session.
void fuzz_session_restore(std::span<const std::uint8_t> bytes) {
  ftio::engine::StreamingSession session(session_options());
  try {
    session.restore_state(bytes);
  } catch (const ftio::util::ParseError&) {
    return;  // rejection is the contract
  }
  // Accepted: the image must be stable (serialize -> restore ->
  // serialize is a fixed point) and the session must still work.
  const std::vector<std::uint8_t> image = session.serialize_state();
  ftio::engine::StreamingSession again(session_options());
  try {
    again.restore_state(image);
  } catch (const ftio::util::ParseError&) {
    fail("own serialization rejected after restore");
  }
  if (again.serialize_state() != image) {
    fail("restore/serialize is not a fixed point");
  }
  const ftio::trace::IoRequest poke{0, 1.0, 1.5, 4096,
                                    ftio::trace::IoKind::kWrite};
  session.ingest(std::span<const ftio::trace::IoRequest>(&poke, 1));
  static_cast<void>(session.predict());
}

/// parse_checkpoint over arbitrary bytes: ParseError or a checkpoint
/// whose re-encoding parses back losslessly.
void fuzz_checkpoint_parse(std::span<const std::uint8_t> bytes) {
  ftio::durability::RecoveryStats stats;
  ftio::durability::CheckpointData data;
  try {
    data = ftio::durability::parse_checkpoint(bytes, stats);
  } catch (const ftio::util::ParseError&) {
    return;
  }
  const std::vector<std::uint8_t> encoded =
      ftio::durability::encode_checkpoint(data);
  ftio::durability::RecoveryStats restats;
  ftio::durability::CheckpointData reparsed;
  try {
    reparsed = ftio::durability::parse_checkpoint(encoded, restats);
  } catch (const ftio::util::ParseError&) {
    fail("re-encoded checkpoint rejected");
  }
  if (restats.tenant_frames_skipped != 0 ||
      reparsed.tenants.size() != data.tenants.size() ||
      reparsed.floor_seq != data.floor_seq) {
    fail("checkpoint re-encode round trip lost data");
  }
  for (std::size_t i = 0; i < data.tenants.size(); ++i) {
    const auto& a = data.tenants[i];
    const auto& b = reparsed.tenants[i];
    if (a.name != b.name || a.poisoned != b.poisoned ||
        a.last_applied_seq != b.last_applied_seq ||
        a.pending.size() != b.pending.size() ||
        a.has_session != b.has_session ||
        a.session_state != b.session_state) {
      fail("checkpoint tenant snapshot round trip mismatch");
    }
    // The embedded session blob feeds the next decoder down: it too
    // must restore-or-reject.
    if (a.has_session) fuzz_session_restore(a.session_state);
  }
}

/// scan_journal_bytes over arbitrary bytes: never throws, and the
/// decoded prefix re-encodes to a run the scanner reads identically.
void fuzz_journal_scan(std::span<const std::uint8_t> bytes) {
  constexpr std::size_t kMaxRecordBytes = 1u << 20;
  std::vector<ftio::durability::JournalRecord> records;
  const ftio::durability::JournalScan scan =
      ftio::durability::scan_journal_bytes(bytes, kMaxRecordBytes, records);
  if (scan.valid_bytes > bytes.size()) fail("valid_bytes out of range");
  if (scan.clean && scan.records_discarded == 0 &&
      scan.valid_bytes != bytes.size()) {
    fail("clean scan did not consume the input");
  }

  std::vector<std::uint8_t> reencoded;
  for (const auto& record : records) {
    const auto frame = ftio::durability::encode_journal_record(record);
    reencoded.insert(reencoded.end(), frame.begin(), frame.end());
  }
  std::vector<ftio::durability::JournalRecord> reread;
  const ftio::durability::JournalScan rescan =
      ftio::durability::scan_journal_bytes(reencoded, kMaxRecordBytes,
                                           reread);
  if (!rescan.clean || rescan.records_discarded != 0 ||
      rescan.valid_bytes != reencoded.size() ||
      reread.size() != records.size()) {
    fail("journal re-encode round trip lost records");
  }
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& a = records[i];
    const auto& b = reread[i];
    if (a.type != b.type || a.seq != b.seq || a.tenant != b.tenant ||
        a.requests.size() != b.requests.size() ||
        a.aborted_seq != b.aborted_seq) {
      fail("journal record round trip mismatch");
    }
  }
}

}  // namespace

int ftio_fuzz_durability(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::span<const std::uint8_t> payload(data + 1, size - 1);
  switch (data[0] % 3) {
    case 0:
      fuzz_session_restore(payload);
      break;
    case 1:
      fuzz_checkpoint_parse(payload);
      break;
    default:
      fuzz_journal_scan(payload);
      break;
  }
  return 0;
}

}  // namespace ftio::fuzz
