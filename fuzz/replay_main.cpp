// Corpus replay driver: runs every file of the committed seed corpus
// (and any crasher added later) through the matching harness, without
// needing libFuzzer — it builds with any compiler, so the replay runs as
// a plain ctest target on the GCC legs too. A harness abort or sanitizer
// report fails the run; regressions caught by fuzzing stay caught.
//
// Usage: fuzz_corpus_replay <corpus-root>
//   <corpus-root>/trace_formats/*  -> ftio_fuzz_trace_formats
//   <corpus-root>/pipeline/*       -> ftio_fuzz_pipeline
//   <corpus-root>/service/*        -> ftio_fuzz_service
//   <corpus-root>/durability/*     -> ftio_fuzz_durability

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/harness_durability.hpp"
#include "fuzz/harness_pipeline.hpp"
#include "fuzz/harness_service.hpp"
#include "fuzz/harness_trace_formats.hpp"

namespace {

using Harness = int (*)(const std::uint8_t*, std::size_t);

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

int replay_directory(const std::filesystem::path& dir, Harness harness,
                     const char* name) {
  if (!std::filesystem::is_directory(dir)) {
    std::fprintf(stderr, "fuzz_corpus_replay: missing corpus dir %s\n",
                 dir.string().c_str());
    return 0;
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& file : files) {
    const auto bytes = read_file(file);
    std::printf("replay %-14s %s (%zu bytes)\n", name,
                file.filename().string().c_str(), bytes.size());
    std::fflush(stdout);  // name the input even if the harness aborts
    harness(bytes.data(), bytes.size());
  }
  return static_cast<int>(files.size());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  int replayed = 0;
  replayed += replay_directory(root / "trace_formats",
                               ftio::fuzz::ftio_fuzz_trace_formats,
                               "trace_formats");
  replayed += replay_directory(root / "pipeline",
                               ftio::fuzz::ftio_fuzz_pipeline, "pipeline");
  replayed += replay_directory(root / "service",
                               ftio::fuzz::ftio_fuzz_service, "service");
  replayed += replay_directory(root / "durability",
                               ftio::fuzz::ftio_fuzz_durability, "durability");
  if (replayed == 0) {
    std::fprintf(stderr, "fuzz_corpus_replay: no corpus files under %s\n",
                 root.string().c_str());
    return 1;
  }
  std::printf("fuzz_corpus_replay: %d inputs OK\n", replayed);
  return 0;
}
