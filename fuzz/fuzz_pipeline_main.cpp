// libFuzzer entry point for the discretise → detect pipeline harness.
// Kept in its own translation unit so the replay driver can link both
// harnesses into one binary without colliding LLVMFuzzerTestOneInput
// definitions.

#include <cstddef>
#include <cstdint>

#include "fuzz/harness_pipeline.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return ftio::fuzz::ftio_fuzz_pipeline(data, size);
}
