#include "fuzz/harness_pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "core/detectors.hpp"
#include "core/ftio.hpp"
#include "engine/streaming.hpp"
#include "trace/model.hpp"
#include "util/error.hpp"

namespace ftio::fuzz {

namespace {

/// Little-endian byte reader over the fuzz input; reads past the end
/// yield zeros, so every input length decodes to a complete program.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }
  std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (u8() << 8));
  }
  bool done() const { return pos_ >= size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Decodes a bounded, finite event stream: gaps in [0, 2.55] s,
/// durations in (0, 1.27] s, byte counts in [1, 65536]. Every field the
/// discretise → detect pipeline consumes stays well inside the ranges
/// its API documents, so any abort downstream is a genuine invariant
/// violation, not an input-validation finding.
ftio::trace::Trace decode_trace(ByteReader& reader, std::size_t max_requests) {
  ftio::trace::Trace trace;
  trace.app = "fuzz";
  double clock = 0.0;
  while (!reader.done() && trace.requests.size() < max_requests) {
    ftio::trace::IoRequest r;
    clock += static_cast<double>(reader.u8()) / 100.0;
    r.start = clock;
    r.end = clock + (1.0 + static_cast<double>(reader.u8() % 127)) / 100.0;
    r.bytes = 1u + reader.u16();
    r.rank = reader.u8() % 8;
    r.kind = (reader.u8() & 1) != 0 ? ftio::trace::IoKind::kRead
                                    : ftio::trace::IoKind::kWrite;
    trace.requests.push_back(r);
    trace.rank_count = std::max(trace.rank_count, r.rank + 1);
  }
  return trace;
}

ftio::core::FtioOptions decode_options(ByteReader& reader) {
  ftio::core::FtioOptions options;
  options.sampling_frequency = 1.0 + static_cast<double>(reader.u8() % 50);
  options.with_autocorrelation = (reader.u8() & 1) != 0;
  options.sampling_mode = (reader.u8() & 1) != 0
                              ? ftio::signal::SamplingMode::kBinAverage
                              : ftio::signal::SamplingMode::kPointSample;
  // Rotate through detector selections so every registered method sees
  // fuzzed windows, not just the default {dft, acf} pair.
  switch (reader.u8() % 4) {
    case 0:
      break;  // paper default
    case 1:
      options.detectors.detectors = {{"dft", 1.0}, {"lomb-scargle", 0.5}};
      break;
    case 2:
      options.detectors.detectors = {{"dft", 1.0}, {"autoperiod", 1.0}};
      break;
    default:
      options.detectors.detectors = {{"dft", 1.0},
                                     {"cfd-autoperiod", 1.0},
                                     {"acf", 1.0}};
      break;
  }
  return options;
}

void run_offline(const ftio::trace::Trace& trace,
                 const ftio::core::FtioOptions& options) {
  ftio::core::FtioResult result;
  try {
    result = ftio::core::detect(trace, options);
  } catch (const ftio::util::InvalidArgument&) {
    return;  // documented rejection (e.g. window shorter than a sample)
  }
  // Cross-checks mirroring the FTIO_CONTRACT layer, live in every build
  // mode so the Release fuzz leg still validates results.
  if (!std::isfinite(result.refined_confidence) ||
      result.refined_confidence < 0.0 || result.refined_confidence > 1.0) {
    std::fprintf(stderr, "fuzz_pipeline: refined confidence out of range\n");
    std::abort();
  }
  if (result.fused.found() &&
      !(result.fused.period > 0.0 && std::isfinite(result.fused.period))) {
    std::fprintf(stderr, "fuzz_pipeline: fused period not positive finite\n");
    std::abort();
  }
}

void run_streaming(const ftio::trace::Trace& trace,
                   const ftio::core::FtioOptions& base, ByteReader& reader) {
  ftio::engine::StreamingOptions options;
  options.online.base = base;
  const std::uint8_t strategy = reader.u8() % 3;
  options.online.strategy =
      strategy == 0   ? ftio::core::WindowStrategy::kGrowing
      : strategy == 1 ? ftio::core::WindowStrategy::kAdaptive
                      : ftio::core::WindowStrategy::kFixedLength;
  options.online.fixed_window = 1.0 + static_cast<double>(reader.u8() % 60);
  options.online.auto_sampling_frequency = (reader.u8() & 1) != 0;
  options.compaction.enabled = (reader.u8() & 1) != 0;
  options.triage.enabled = (reader.u8() & 1) != 0;
  options.triage.warmup_analyses = 1u + reader.u8() % 4;
  ftio::engine::StreamingSession session(options);

  const std::size_t chunk = 1u + reader.u8() % 16;
  std::size_t fed = 0;
  while (fed < trace.requests.size()) {
    const std::size_t n = std::min(chunk, trace.requests.size() - fed);
    session.ingest(std::span<const ftio::trace::IoRequest>(
        trace.requests.data() + fed, n));
    fed += n;
    try {
      static_cast<void>(session.predict());
    } catch (const ftio::util::InvalidArgument&) {
      // Documented: e.g. the ingested span was filtered empty, or the
      // current window holds less than one sample.
    }
  }
  static_cast<void>(session.merged_intervals());
  static_cast<void>(session.memory_bytes());
}

}  // namespace

int ftio_fuzz_pipeline(const std::uint8_t* data, std::size_t size) {
  ByteReader reader(data, size);
  const ftio::core::FtioOptions options = decode_options(reader);
  // A few hundred events keeps one input under ~10 ms, which is what
  // lets the smoke leg's fixed time budget cover real path diversity.
  const ftio::trace::Trace trace = decode_trace(reader, 256);
  if (trace.requests.empty()) return 0;

  ByteReader tail(data, size);  // reuse the prefix for streaming knobs
  run_offline(trace, options);
  run_streaming(trace, options, tail);
  return 0;
}

}  // namespace ftio::fuzz
