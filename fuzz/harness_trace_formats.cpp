#include "fuzz/harness_trace_formats.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "trace/formats.hpp"
#include "trace/model.hpp"
#include "util/error.hpp"

namespace ftio::fuzz {

namespace {

[[noreturn]] void property_failed(const char* format, const char* detail) {
  // abort() rather than an exception: both libFuzzer and the corpus
  // replay driver treat an abnormal exit as the finding signal.
  std::fprintf(stderr, "fuzz_trace_formats: %s round-trip broke: %s\n",
               format, detail);
  std::abort();
}

bool all_finite(const ftio::trace::Trace& trace) {
  for (const auto& r : trace.requests) {
    if (!std::isfinite(r.start) || !std::isfinite(r.end)) return false;
  }
  return true;
}

/// serialize ∘ parse must be a fixpoint after one canonicalising round:
/// whatever the parser accepted, its serialisation must reparse to a
/// trace that serialises identically. Guarded on finite times — the
/// JSONL serialiser canonicalises non-finite values to null by design.
/// JSONL prints doubles with %.17g and MessagePack stores raw float64,
/// so both are exact; recorder CSV's %.9g re-reads to the same 9
/// significant digits.
template <class Serialize, class Parse>
void check_fixpoint(const char* format, const ftio::trace::Trace& first,
                    Serialize serialize, Parse parse) {
  if (!all_finite(first)) return;
  const auto s1 = serialize(first);
  ftio::trace::Trace second;
  try {
    second = parse(s1);
  } catch (const std::exception& e) {
    property_failed(format, e.what());
  }
  if (second.requests.size() != first.requests.size()) {
    property_failed(format, "request count changed on reparse");
  }
  if (serialize(second) != s1) {
    property_failed(format, "serialisation is not a fixpoint");
  }
}

void fuzz_jsonl(std::string_view text) {
  ftio::trace::Trace trace;
  try {
    trace = ftio::trace::from_jsonl(text);
  } catch (const ftio::util::ParseError&) {
    return;  // documented rejection of malformed input
  } catch (const ftio::util::InvalidArgument&) {
    return;
  }
  check_fixpoint(
      "jsonl", trace,
      [](const ftio::trace::Trace& t) { return ftio::trace::to_jsonl(t); },
      [](const std::string& s) { return ftio::trace::from_jsonl(s); });
}

void fuzz_msgpack(std::span<const std::uint8_t> bytes) {
  ftio::trace::Trace trace;
  try {
    trace = ftio::trace::from_msgpack(bytes);
  } catch (const ftio::util::ParseError&) {
    return;
  } catch (const ftio::util::InvalidArgument&) {
    return;
  }
  check_fixpoint(
      "msgpack", trace,
      [](const ftio::trace::Trace& t) { return ftio::trace::to_msgpack(t); },
      [](const std::vector<std::uint8_t>& s) {
        return ftio::trace::from_msgpack(s);
      });
}

void fuzz_recorder_csv(std::string_view text) {
  ftio::trace::Trace trace;
  try {
    trace = ftio::trace::from_recorder_csv(text);
  } catch (const ftio::util::ParseError&) {
    return;
  } catch (const ftio::util::InvalidArgument&) {
    return;
  }
  check_fixpoint(
      "recorder-csv", trace,
      [](const ftio::trace::Trace& t) {
        return ftio::trace::to_recorder_csv(t);
      },
      [](const std::string& s) { return ftio::trace::from_recorder_csv(s); });
}

void fuzz_heatmap_csv(std::string_view text) {
  ftio::trace::Heatmap heatmap;
  try {
    heatmap = ftio::trace::from_heatmap_csv(text);
  } catch (const ftio::util::ParseError&) {
    return;
  } catch (const ftio::util::InvalidArgument&) {
    return;
  }
  // Bin edges are recomputed from start + i * width on serialisation, so
  // byte-exact fixpointing is out of reach (%.9g of an accumulated sum);
  // the structural core must survive instead.
  if (!std::isfinite(heatmap.start_time) || !std::isfinite(heatmap.bin_width)) {
    return;
  }
  const auto s1 = ftio::trace::to_heatmap_csv(heatmap);
  ftio::trace::Heatmap second;
  try {
    second = ftio::trace::from_heatmap_csv(s1);
  } catch (const std::exception& e) {
    property_failed("heatmap-csv", e.what());
  }
  if (second.bytes_per_bin.size() != heatmap.bytes_per_bin.size()) {
    property_failed("heatmap-csv", "bin count changed on reparse");
  }
  if (second.app != heatmap.app) {
    property_failed("heatmap-csv", "app name changed on reparse");
  }
  const double width_error =
      std::abs(second.bin_width - heatmap.bin_width);
  if (width_error > 1e-6 * std::abs(heatmap.bin_width)) {
    property_failed("heatmap-csv", "bin width drifted on reparse");
  }
  // The derived curve must stay constructible on whatever the parser let
  // through (empty or degenerate heatmaps yield an empty curve).
  static_cast<void>(heatmap.bandwidth());
}

}  // namespace

int ftio_fuzz_trace_formats(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t selector = data[0];
  const auto* payload = data + 1;
  const std::size_t payload_size = size - 1;
  const std::string_view text(reinterpret_cast<const char*>(payload),
                              payload_size);
  // Readable selector bytes for the seed corpus; every other byte value
  // still lands on a parser so mutated selectors stay productive.
  switch (selector) {
    case 'J':
      fuzz_jsonl(text);
      return 0;
    case 'M':
      fuzz_msgpack({payload, payload_size});
      return 0;
    case 'R':
      fuzz_recorder_csv(text);
      return 0;
    case 'H':
      fuzz_heatmap_csv(text);
      return 0;
    default:
      break;
  }
  switch (selector % 4) {
    case 0:
      fuzz_jsonl(text);
      break;
    case 1:
      fuzz_msgpack({payload, payload_size});
      break;
    case 2:
      fuzz_recorder_csv(text);
      break;
    default:
      fuzz_heatmap_csv(text);
      break;
  }
  return 0;
}

}  // namespace ftio::fuzz
