#pragma once

#include <cstddef>
#include <cstdint>

namespace ftio::fuzz {

/// Fuzz entry point over the durability decoders — every parser that
/// crash recovery feeds with bytes it must assume are damaged.
///
/// The first input byte selects the target, the rest is the payload:
///   0  engine::StreamingSession::restore_state — arbitrary bytes either
///      restore a session or throw ParseError; a successful restore must
///      re-serialize to a stable image and keep ingesting.
///   1  durability::parse_checkpoint — recover-or-reject per frame: a
///      parsed checkpoint re-encodes and re-parses losslessly, and every
///      embedded session blob again restores-or-rejects.
///   2  durability::scan_journal_bytes — never throws at all; decoded
///      records re-encode to a byte run the scanner reads back
///      identically (the torn-tail truncation point is a pure function
///      of the bytes).
///
/// ParseError is the contract, so it is caught; any other escape, a
/// crash, or a violated round-trip property is a finding (abort).
///
/// Returns 0 (libFuzzer convention).
int ftio_fuzz_durability(const std::uint8_t* data, std::size_t size);

}  // namespace ftio::fuzz
