#include "fuzz/harness_service.hpp"

#include <cstdio>
#include <cstdlib>
#include <span>
#include <string>
#include <vector>

#include "service/daemon.hpp"
#include "service/service.hpp"
#include "trace/model.hpp"
#include "util/failpoints.hpp"

namespace ftio::fuzz {

namespace {

/// Little-endian byte reader over the fuzz input; reads past the end
/// yield zeros, so every input length decodes to a complete program.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return pos_ < size_ ? data_[pos_++] : 0; }
  std::uint16_t u16() {
    return static_cast<std::uint16_t>(u8() | (u8() << 8));
  }
  std::string bytes(std::size_t n) {
    std::string out;
    out.reserve(n);
    while (out.size() < n && pos_ < size_) {
      out.push_back(static_cast<char>(data_[pos_++]));
    }
    return out;
  }
  bool done() const { return pos_ >= size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

ftio::service::ServiceOptions decode_options(ByteReader& reader) {
  ftio::service::ServiceOptions options;
  options.background = false;  // deterministic foreground pumping
  options.shards = 1u + reader.u8() % 3;
  options.mailbox_capacity = 2u + reader.u8() % 14;
  options.coalesce_depth = reader.u8() % options.mailbox_capacity;
  options.max_item_requests = 8u + reader.u8() % 120;
  options.drain_batch = 1u + reader.u8() % 8;
  options.max_tenants_per_shard = 1u + reader.u8() % 8;
  options.materialize_after_requests = 1u + reader.u8() % 4;
  options.ladder.recovery_cycles = 1u + reader.u8() % 4;
  options.ladder.triage_stride = 1u + reader.u8() % 4;
  if ((reader.u8() & 1) != 0) {
    options.budget.analyses_per_second = 0.0;
    options.budget.burst = static_cast<double>(reader.u8() % 4);
  }
  // Tiny sessions: triage warmup 1 so the cheap tier engages quickly.
  options.session.triage.warmup_analyses = 1;
  return options;
}

/// Arms a subset of the service failpoints from input bytes. No-op
/// payload-wise when the call sites are compiled out — arming is still
/// exercised for registry coverage.
void arm_failpoints(ByteReader& reader) {
  const std::uint8_t mask = reader.u8();
  const std::uint16_t seed = reader.u16();
  const double probability = (1.0 + reader.u8() % 50) / 100.0;
  const char* kNames[] = {"service.alloc", "service.session_throw",
                          "service.slow_shard", "service.shard_crash",
                          "service.queue_overflow", "trace.parse_garbage"};
  for (std::size_t i = 0; i < std::size(kNames); ++i) {
    if ((mask & (1u << i)) != 0) {
      ftio::util::failpoints::arm(kNames[i], probability, seed + i);
    }
  }
}

std::vector<ftio::trace::IoRequest> decode_requests(ByteReader& reader,
                                                    double& clock) {
  std::vector<ftio::trace::IoRequest> requests;
  const std::size_t count = 1u + reader.u8() % 24;
  for (std::size_t i = 0; i < count; ++i) {
    ftio::trace::IoRequest r;
    clock += static_cast<double>(reader.u8()) / 100.0;
    r.start = clock;
    r.end = clock + (1.0 + static_cast<double>(reader.u8() % 127)) / 100.0;
    r.bytes = 1u + reader.u16();
    r.rank = reader.u8() % 4;
    r.kind = (reader.u8() & 1) != 0 ? ftio::trace::IoKind::kRead
                                    : ftio::trace::IoKind::kWrite;
    requests.push_back(r);
  }
  return requests;
}

[[noreturn]] void fail(const char* what) {
  std::fprintf(stderr, "fuzz_service: %s\n", what);
  std::abort();
}

}  // namespace

int ftio_fuzz_service(const std::uint8_t* data, std::size_t size) {
  ftio::util::failpoints::disarm_all();
  ByteReader reader(data, size);
  const ftio::service::ServiceOptions options = decode_options(reader);
  arm_failpoints(reader);
  double clock = 0.0;
  {
    ftio::service::IngestDaemon daemon(options);
    for (std::size_t op = 0; op < 64 && !reader.done(); ++op) {
      const std::string tenant = "t" + std::to_string(reader.u8() % 6);
      switch (reader.u8() % 5) {
        case 0:
        case 1:
          static_cast<void>(
              daemon.submit(tenant, decode_requests(reader, clock)));
          break;
        case 2: {
          // Raw fuzz bytes as a framed JSONL payload: the recoverable
          // parse must contain whatever this is to the bad records.
          static_cast<void>(
              daemon.submit_jsonl(tenant, reader.bytes(reader.u8())));
          break;
        }
        case 3:
          static_cast<void>(daemon.pump());
          break;
        default: {
          const std::string blob = reader.bytes(reader.u8());
          static_cast<void>(daemon.submit_msgpack(
              tenant,
              std::span<const std::uint8_t>(
                  reinterpret_cast<const std::uint8_t*>(blob.data()),
                  blob.size())));
          break;
        }
      }
      static_cast<void>(daemon.last_prediction(tenant));
    }
    daemon.stop();

    const ftio::service::ShardStats total = daemon.stats().total();
    for (const ftio::service::ShardStats& shard : daemon.stats().shards) {
      if (shard.queue_max_depth > shard.queue_capacity) {
        fail("mailbox exceeded its capacity bound");
      }
    }
    if (total.processed_items > total.accepted) {
      fail("processed more items than were accepted");
    }
    if (ftio::util::failpoints::fire_count("service.shard_crash") == 0 &&
        total.processed_items != total.accepted) {
      // Without crash injection, stop() drains: conservation is exact.
      fail("accepted items lost without a crash failpoint");
    }
  }
  ftio::util::failpoints::disarm_all();
  return 0;
}

}  // namespace ftio::fuzz
