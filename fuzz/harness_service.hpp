#pragma once

#include <cstddef>
#include <cstdint>

namespace ftio::fuzz {

/// Fuzz entry point over the ingest daemon's admission path.
///
/// The input bytes decode to a daemon configuration (shard count,
/// mailbox capacity, materialization threshold, budget, tenant cap —
/// all folded into small ranges) followed by a bounded operation
/// program: request submissions, framed JSONL/MessagePack submissions
/// fed raw fuzz bytes (the ParsePolicy::kSkipBad surface), pump cycles,
/// and stats scrapes, across a handful of tenants. When the library was
/// built with FTIO_ENABLE_FAILPOINTS the header can additionally arm
/// the service failpoints with input-derived seeds, so the quarantine,
/// crash-restart, and overflow paths are in scope of the same inputs.
///
/// The daemon runs in foreground mode — single-threaded and
/// deterministic — and the harness checks the admission-control
/// invariants after teardown: the queue depth never exceeded its bound,
/// and every accepted item was processed exactly once unless a crash
/// failpoint fired. InvalidArgument and admission rejections are
/// expected outcomes; any other escape or an invariant miss is a
/// finding.
///
/// Returns 0 (libFuzzer convention); aborts on a property violation.
int ftio_fuzz_service(const std::uint8_t* data, std::size_t size);

}  // namespace ftio::fuzz
