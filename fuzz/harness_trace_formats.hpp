#pragma once

#include <cstddef>
#include <cstdint>

namespace ftio::fuzz {

/// Fuzz entry point over the trace-format parsers (trace/formats.cpp).
///
/// The first input byte selects the format (mod 4: jsonl, msgpack,
/// recorder CSV, heatmap CSV — seeds use the readable selector bytes
/// 'J', 'M', 'R', 'H', which map to the same slots); the rest is fed to
/// the parser verbatim. ParseError / InvalidArgument are the documented
/// rejection path for malformed input and count as success — the
/// harness hunts for everything else: crashes, sanitizer reports,
/// contract violations, and round-trip breakage (a parsed trace must
/// survive serialise → reparse with every request intact).
///
/// Returns 0 (libFuzzer convention); aborts on a property violation.
int ftio_fuzz_trace_formats(const std::uint8_t* data, std::size_t size);

}  // namespace ftio::fuzz
