#pragma once

#include <cstddef>
#include <cstdint>

namespace ftio::fuzz {

/// Fuzz entry point over the discretise → detect pipeline and the
/// streaming session.
///
/// The input bytes are decoded as a bounded event program: a small
/// option header (sampling mode, detector set, triage/compaction
/// switches) followed by up to a few hundred I/O requests whose gaps,
/// durations, byte counts, and ranks are folded into sane finite
/// ranges. The harness then runs the offline core::detect pipeline and
/// a chunked StreamingSession ingest/predict loop over the same
/// requests. InvalidArgument (e.g. a window shorter than one sample) is
/// the documented rejection path and counts as success; anything else —
/// crashes, sanitizer reports, FTIO_ASSERT/FTIO_CONTRACT violations in
/// the signal/core/engine layers — is a finding.
///
/// Returns 0 (libFuzzer convention); aborts on a property violation.
int ftio_fuzz_pipeline(const std::uint8_t* data, std::size_t size);

}  // namespace ftio::fuzz
